#include "src/autopilot/autopilot.h"

#include <algorithm>
#include <cstring>
#include <string_view>

#include "src/common/serialize.h"
#include "src/routing/spanning_tree.h"
#include "src/routing/updown.h"

namespace autonet {

Autopilot::Autopilot(Switch* node, AutopilotConfig config)
    : node_(node),
      config_(config),
      engine_(node->sim(), node->uid(), &config_, &node->log(),
              ReconfigEngine::Callbacks{
                  [this](PortNum p, const ReconfigMsg& m) {
                    SendReconfigMsg(p, m);
                  },
                  [this] { return GoodPorts(); },
                  [this](PortNum p) { return monitors_[p].neighbor_uid; },
                  [this](PortNum p) { return monitors_[p].neighbor_port; },
                  [this] { return HostPorts(); },
                  [this] { LoadOneHopTable(); },
                  [this](const NetTopology& topo, int self, std::uint64_t e) {
                    ApplyConfig(topo, self, e);
                  },
              }),
      sampler_task_(node->sim(), [this] { SampleStatus(); }),
      probe_task_(node->sim(), [this] { ProbePorts(); }),
      boot_trigger_(node->sim(), [this] { engine_.Trigger("boot"); }) {
  monitors_.reserve(kPortsPerSwitch);
  for (int p = 0; p < kPortsPerSwitch; ++p) {
    monitors_.emplace_back(config_);
  }
  flight_ = node->sim()->flight().Ring(node->name(), node->uid());
}

void Autopilot::Boot() {
  node_->SetCpHandler([this](Delivery d) { OnCpPacket(std::move(d)); });
  expected_table_ = ForwardingTable::OneHopOnly();
  node_->LoadForwardingTable(expected_table_);
  for (PortNum p = kFirstExternalPort; p < kPortsPerSwitch; ++p) {
    node_->SetPortForceIdhy(p, true);  // all ports start s.dead
    monitors_[p].clean_since = node_->now();
  }
  sampler_task_.Start(config_.status_sample_period);
  probe_task_.Start(config_.probe_period_unknown);
  boot_trigger_.Start(config_.boot_reconfig_delay);
  node_->log().Logf(node_->now(), "autopilot: booted");
}

bool Autopilot::Quiescent() const {
  return !engine_.in_progress() && cpu_queue_depth_ == 0;
}

Tick Autopilot::LastActivity() const {
  Tick last = 0;
  const ReconfigEngine::Stats& e = engine_.stats();
  last = std::max({last, e.last_join_time, e.last_config_time,
                   stats_.last_table_load});
  if (cpu_queue_depth_ > 0) {
    last = std::max(last, cpu_busy_until_);
  }
  for (const PortMonitor& m : monitors_) {
    last = std::max(last, m.state_since);
    // A good-reply streak in progress will transition the port once the
    // connectivity skeptic is satisfied; count it as pending activity.
    if (m.state == PortState::kSwitchWho && m.good_streak_start >= 0) {
      last = std::max(last, m.good_streak_start);
    }
  }
  return last;
}

void Autopilot::RunOnCpu(Tick cost, std::function<void()> fn) {
  if (!*powered_) {
    return;
  }
  Tick start = std::max(node_->now(), cpu_busy_until_);
  cpu_busy_until_ = start + cost;
  ++cpu_queue_depth_;
  node_->sim()->ScheduleAt(
      cpu_busy_until_, [this, guard = powered_, fn = std::move(fn)] {
        if (!*guard) {
          return;  // the control processor lost power meanwhile
        }
        --cpu_queue_depth_;
        fn();
      });
}

void Autopilot::Shutdown() {
  *powered_ = false;
  cpu_queue_depth_ = 0;
  sampler_task_.Stop();
  probe_task_.Stop();
  boot_trigger_.Stop();
  engine_.Shutdown();
  node_->SetCpHandler(nullptr);
  node_->log().Logf(node_->now(), "autopilot: power off");
}

// --- packet dispatch ---

void Autopilot::OnCpPacket(Delivery delivery) {
  RunOnCpu(config_.cost_packet_process, [this, d = std::move(delivery)] {
    if (!d.intact()) {
      // Software CRC check failed: charge the arrival port (section 6.5.3:
      // the status sampler counts CRC errors on CP packets).
      ++stats_.crc_errors;
      if (d.arrival_port >= kFirstExternalPort &&
          d.arrival_port < kPortsPerSwitch) {
        ++monitors_[d.arrival_port].pending_crc_errors;
      }
      return;
    }
    switch (d.packet->type) {
      case PacketType::kReconfig:
        HandleReconfig(d);
        break;
      case PacketType::kConnectivity:
        HandleConnectivity(d);
        break;
      case PacketType::kHostAddress:
        HandleHostAddress(d);
        break;
      case PacketType::kSrp:
        HandleSrp(d);
        break;
      case PacketType::kEthernetEncap:
        break;  // broadcast client traffic reaching the CP: ignored
    }
  });
}

void Autopilot::HandleReconfig(const Delivery& d) {
  auto msg = ReconfigMsg::Parse(d.packet->payload);
  if (!msg.has_value() || d.arrival_port < kFirstExternalPort ||
      d.arrival_port >= kPortsPerSwitch) {
    return;
  }
  engine_.OnMessage(d.arrival_port, *msg);
}

void Autopilot::SendReconfigMsg(PortNum port, const ReconfigMsg& msg) {
  RunOnCpu(config_.cost_packet_send, [this, port, msg] {
    Packet p;
    p.dest = OneHopAddress(port);
    p.src = kAddrLocalCp;
    p.type = PacketType::kReconfig;
    p.payload = msg.Serialize();
    node_->CpSend(MakePacket(std::move(p)));
  });
}

void Autopilot::HandleConnectivity(const Delivery& d) {
  auto msg = ConnectivityMsg::Parse(d.packet->payload);
  if (!msg.has_value() || d.arrival_port < kFirstExternalPort ||
      d.arrival_port >= kPortsPerSwitch) {
    return;
  }
  if (msg->kind == ConnectivityMsg::Kind::kProbe) {
    // Reply one hop out the arrival port, echoing the probe.
    ConnectivityMsg reply;
    reply.kind = ConnectivityMsg::Kind::kReply;
    reply.seq = msg->seq;
    reply.sender_uid = node_->uid();
    reply.sender_port = static_cast<std::uint8_t>(d.arrival_port);
    reply.echo_uid = msg->sender_uid;
    reply.echo_port = msg->sender_port;
    reply.echo_seq = msg->seq;
    PortNum port = d.arrival_port;
    RunOnCpu(config_.cost_packet_send, [this, port, reply] {
      Packet p;
      p.dest = OneHopAddress(port);
      p.src = kAddrLocalCp;
      p.type = PacketType::kConnectivity;
      p.payload = reply.Serialize();
      node_->CpSend(MakePacket(std::move(p)));
    });
  } else {
    OnProbeReply(d.arrival_port, *msg);
  }
}

void Autopilot::HandleHostAddress(const Delivery& d) {
  auto msg = HostAddressMsg::Parse(d.packet->payload);
  if (!msg.has_value() || msg->kind != HostAddressMsg::Kind::kRequest) {
    return;
  }
  if (switch_num_ == 0 || d.arrival_port < kFirstExternalPort) {
    return;  // no configuration yet: the host will retry
  }
  HostAddressMsg reply;
  reply.kind = HostAddressMsg::Kind::kReply;
  reply.host_uid = msg->host_uid;
  reply.switch_uid = node_->uid();
  reply.short_address =
      ShortAddress::FromSwitchPort(switch_num_, d.arrival_port).value();
  reply.epoch = engine_.epoch();
  PortNum port = d.arrival_port;
  ++stats_.host_addr_replies;
  RunOnCpu(config_.cost_packet_send, [this, port, reply] {
    Packet p;
    p.dest = ShortAddress(reply.short_address);
    p.src = ShortAddress::FromSwitchPort(switch_num_, kCpPort);
    p.type = PacketType::kHostAddress;
    p.payload = reply.Serialize();
    node_->CpSend(MakePacket(std::move(p)));
    (void)port;
  });
}

void Autopilot::SendSrp(const SrpMsg& msg, PortNum out) {
  RunOnCpu(config_.cost_packet_send, [this, msg, out] {
    Packet p;
    p.dest = OneHopAddress(out);
    p.src = kAddrLocalCp;
    p.type = PacketType::kSrp;
    p.payload = msg.Serialize();
    node_->CpSend(MakePacket(std::move(p)));
  });
}

void Autopilot::HandleSrp(const Delivery& d) {
  auto msg = SrpMsg::Parse(d.packet->payload);
  if (!msg.has_value() || d.arrival_port < kFirstExternalPort) {
    return;
  }
  msg->reverse_route.push_back(static_cast<std::uint8_t>(d.arrival_port));
  if (msg->position < msg->route.size()) {
    // Intermediate hop: forward along the source route.
    PortNum out = msg->route[msg->position];
    if (out < kFirstExternalPort || out >= kPortsPerSwitch) {
      return;
    }
    ++msg->position;
    ++stats_.srp_forwarded;
    SendSrp(*msg, out);
    return;
  }
  if (msg->op == SrpMsg::Op::kReply) {
    return;  // a reply that ran out of route here: nothing to do
  }
  // Final hop: serve the request and send the reply back along the
  // recorded reverse path.
  ++stats_.srp_served;
  SrpMsg reply;
  reply.request_id = msg->request_id;
  ByteWriter body;
  switch (msg->op) {
    case SrpMsg::Op::kEcho:
      body.Bytes(msg->body.data(), msg->body.size());
      break;
    case SrpMsg::Op::kGetState: {
      body.U64(engine_.epoch());
      body.U16(switch_num_);
      body.WriteUid(node_->uid());
      body.U8(engine_.in_progress() ? 1 : 0);
      for (PortNum p = kFirstExternalPort; p < kPortsPerSwitch; ++p) {
        body.U8(static_cast<std::uint8_t>(monitors_[p].state));
      }
      break;
    }
    case SrpMsg::Op::kGetTopology: {
      std::vector<SwitchRecord> records;
      if (topology_.has_value()) {
        records = TopologyToRecords(*topology_);
      }
      SerializeSwitchRecords(body, records);
      break;
    }
    case SrpMsg::Op::kGetLog: {
      std::string text;
      const auto& entries = node_->log().entries();
      std::size_t start = entries.size() > 16 ? entries.size() - 16 : 0;
      for (std::size_t i = start; i < entries.size(); ++i) {
        text += entries[i].message;
        text += '\n';
        if (text.size() > 900) {
          break;
        }
      }
      body.Bytes(reinterpret_cast<const std::uint8_t*>(text.data()),
                 text.size());
      break;
    }
    case SrpMsg::Op::kGetStats: {
      // Serves this switch's slice of the metric registry: every instrument
      // under `switch.<name>.`, with that prefix stripped so the reply
      // carries only the local part.  The request body optionally holds a
      // substring filter.  Entry: u8 kind, u16 name length, name bytes,
      // then kind-dependent payload (f64 transported as its bit pattern).
      // The reply is capped near the GetLog limit so it stays one packet.
      const std::string filter(msg->body.begin(), msg->body.end());
      const std::string prefix = "switch." + node_->name() + ".";
      std::uint16_t count = 0;
      ByteWriter entries;
      node_->sim()->metrics().Visit(prefix, [&](const obs::MetricRegistry::
                                                    Entry& e) {
        if (entries.size() > 900) {
          return;
        }
        std::string name = e.name.substr(prefix.size());
        if (!filter.empty() && name.find(filter) == std::string::npos) {
          return;
        }
        entries.U8(static_cast<std::uint8_t>(e.kind));
        entries.U16(static_cast<std::uint16_t>(name.size()));
        entries.Bytes(reinterpret_cast<const std::uint8_t*>(name.data()),
                      name.size());
        auto f64bits = [](double v) {
          std::uint64_t bits;
          std::memcpy(&bits, &v, sizeof bits);
          return bits;
        };
        switch (e.kind) {
          case obs::MetricKind::kCounter:
            entries.U64(e.counter.value());
            break;
          case obs::MetricKind::kGauge:
            entries.U64(f64bits(e.gauge.value()));
            break;
          case obs::MetricKind::kHistogram:
            entries.U64(e.histogram.count());
            entries.U64(f64bits(e.histogram.Min()));
            entries.U64(f64bits(e.histogram.Max()));
            entries.U64(f64bits(e.histogram.Mean()));
            break;
        }
        ++count;
      });
      // Two synthetic counters expose the flight recorder's ring occupancy
      // and wrap-loss so an operator can tell from netmon alone whether a
      // post-mortem timeline is complete or the ring overwrote its tail.
      // They live outside the metric registry (the recorder is not a
      // metric), so they are appended here under the same filter and cap.
      auto synthetic = [&](const char* name, std::uint64_t value) {
        if (entries.size() > 900) {
          return;
        }
        std::string_view n(name);
        if (!filter.empty() && n.find(filter) == std::string_view::npos) {
          return;
        }
        entries.U8(static_cast<std::uint8_t>(obs::MetricKind::kCounter));
        entries.U16(static_cast<std::uint16_t>(n.size()));
        entries.Bytes(reinterpret_cast<const std::uint8_t*>(n.data()),
                      n.size());
        entries.U64(value);
        ++count;
      };
      synthetic("flight.depth", flight_->depth());
      synthetic("flight.truncated", flight_->truncated());
      body.U16(count);
      body.Bytes(entries.bytes().data(), entries.size());
      break;
    }
    case SrpMsg::Op::kReply:
      return;
  }
  reply.op = SrpMsg::Op::kReply;
  reply.body = body.Take();
  reply.route.assign(msg->reverse_route.rbegin(), msg->reverse_route.rend());
  reply.position = 1;  // the first reverse hop is taken by this send
  SendSrp(reply, reply.route[0]);
}

// --- status sampler (section 6.5.3) ---

void Autopilot::SampleStatus() {
  for (PortNum p = kFirstExternalPort; p < kPortsPerSwitch; ++p) {
    if (!node_->link_unit(p).attached()) {
      continue;
    }
    PortStatus snap = node_->ReadAndClearStatus(p);
    snap.bad_code += monitors_[p].pending_crc_errors;
    monitors_[p].pending_crc_errors = 0;
    SamplePort(p, snap);
  }
  if (++scrub_stride_ >= kScrubSampleStride) {
    scrub_stride_ = 0;
    ScrubTable();
  }
}

// Periodic forwarding-table scrub: software never lets the switch's table
// diverge from the image the control program last loaded, so any mismatch
// is a memory fault in the table RAM and the image is simply reloaded.
// The comparison models the hardware's background parity sweep and costs
// no control-processor time; only an actual repair consumes the usual
// table-load cost (and, on the prototype hardware, the reset that comes
// with it — cheaper than forwarding through a corrupt entry indefinitely).
void Autopilot::ScrubTable() {
  if (node_->forwarding_table() == expected_table_) {
    return;
  }
  if (m_table_scrub_repairs_ == nullptr) {
    // Lazily registered so clean runs add no instrument (keeps metric
    // snapshots — and the chaos fingerprints over them — byte-identical).
    m_table_scrub_repairs_ = node_->sim()->metrics().GetCounter(
        "switch." + node_->name() + ".autopilot.table_scrub_repairs");
  }
  m_table_scrub_repairs_->Increment();
  node_->log().Logf(node_->now(),
                    "table scrub: live table diverged from loaded image; "
                    "reloading");
  RunOnCpu(config_.cost_table_load, [this] {
    node_->LoadForwardingTable(expected_table_);
    ++stats_.tables_loaded;
    stats_.last_table_load = node_->now();
  });
}

void Autopilot::SamplePort(PortNum p, const PortStatus& snap) {
  PortMonitor& m = monitors_[p];
  Tick now = node_->now();

  // Long-term blockage removal: intervals that saw only stop, and intervals
  // with data pending but no forwarding progress.
  if (m.state != PortState::kDead) {
    bool blocked = !snap.xmit_ok && snap.start_seen == 0 &&
                   snap.last_rx_directive == FlowDirective::kStop;
    m.blocked_intervals = blocked ? m.blocked_intervals + 1 : 0;
    bool stuck = snap.fifo_occupancy > 0 && snap.bytes_forwarded == 0;
    m.stuck_intervals = stuck ? m.stuck_intervals + 1 : 0;
    if (m.blocked_intervals >= config_.blocked_intervals_to_dead) {
      FailPort(p, "long-term stop blockage");
      return;
    }
    if (m.stuck_intervals >= config_.blocked_intervals_to_dead) {
      FailPort(p, "no forwarding progress");
      return;
    }
  }

  switch (m.state) {
    case PortState::kDead: {
      bool bad = !snap.carrier || snap.bad_code > 0;
      if (bad) {
        m.clean_since = now;
        break;
      }
      if (now - m.clean_since >= m.status_skeptic.RequiredHolddown(now)) {
        TransitionPort(p, PortState::kChecking, "clean holddown served");
      }
      break;
    }
    case PortState::kChecking: {
      if (!snap.carrier || snap.bad_code > 0) {
        FailPort(p, "errors while checking");
        break;
      }
      if (snap.idhy_seen > 0) {
        break;  // neighbor still distrusts the link
      }
      if (snap.is_host) {
        TransitionPort(p, PortState::kHost, "host directive received");
      } else if (snap.bad_syntax > 0) {
        // Constant BadSyntax with no other errors: an alternate host port
        // sending only sync.
        TransitionPort(p, PortState::kHost, "alternate host pattern");
      } else if (snap.xmit_ok) {
        TransitionPort(p, PortState::kSwitchWho, "switch flow control seen");
      }
      break;
    }
    case PortState::kHost: {
      if (!snap.carrier || snap.bad_code > 0) {
        FailPort(p, "host link errors");
        break;
      }
      if (!snap.is_host && snap.bad_syntax == 0 && snap.xmit_ok) {
        // Switch-style flow control with clean syntax contradicts s.host:
        // a genuine host interval carries a host directive (active host)
        // or constant BadSyntax (alternate port), never bare switch flow
        // control.  The state register is lying — most plausibly a memory
        // fault (see CorruptPortState) — so reclassify via s.dead.
        FailPort(p, "switch flow control on host port");
      }
      break;
    }
    case PortState::kSwitchWho:
    case PortState::kSwitchLoop:
    case PortState::kSwitchGood: {
      if (!snap.carrier || snap.bad_code > 0 || snap.bad_syntax > 0) {
        FailPort(p, "switch link errors");
        break;
      }
      if (snap.is_host) {
        // A host directive can never arrive over a switch-to-switch cable;
        // the state register disagrees with the wire evidence (a corrupted
        // register, or the cable was silently re-plugged into a host).
        // Reclassify via s.dead rather than keep routing over it.
        FailPort(p, "host directive on switch port");
      }
      break;
    }
  }
}

void Autopilot::TransitionPort(PortNum p, PortState next, const char* reason) {
  PortMonitor& m = monitors_[p];
  PortState prev = m.state;
  if (prev == next) {
    return;
  }
  // Capture the neighbor identity before the monitor state is cleared: the
  // reconfiguration engine needs it to describe the link delta.
  Uid neighbor_uid = m.neighbor_uid;
  PortNum neighbor_port = m.neighbor_port;

  m.state = next;
  m.state_since = node_->now();
  node_->log().Logf(node_->now(), "port %d: %s -> %s (%s)", p,
                    PortStateName(prev), PortStateName(next), reason);
  if (flight_->armed()) {
    obs::FlightEvent ev;
    ev.time = node_->now();
    ev.epoch = engine_.epoch();
    ev.kind = obs::FlightEventKind::kPortTransition;
    ev.port = static_cast<std::int16_t>(p);
    ev.origin = neighbor_uid;
    ev.detail = reason;
    ev.from = PortStateName(prev);
    ev.to = PortStateName(next);
    flight_->Record(ev);
  }
  node_->SetPortForceIdhy(p, next == PortState::kDead);
  if (next == PortState::kDead || next == PortState::kChecking) {
    m.probe_outstanding = false;
    m.probe_misses = 0;
    m.good_streak_start = -1;
    m.neighbor_uid = Uid();
    m.neighbor_port = -1;
  }
  bool was_good = prev == PortState::kSwitchGood;
  bool is_good = next == PortState::kSwitchGood;
  if (was_good != is_good) {
    engine_.OnLinkStateChange(p, is_good, neighbor_uid, neighbor_port,
                              reason);
  }
  bool was_host = prev == PortState::kHost;
  bool is_host = next == PortState::kHost;
  if (was_host != is_host && !engine_.in_progress()) {
    PatchLocalTable(reason);
  }
}

void Autopilot::FailPort(PortNum p, const char* reason) {
  PortMonitor& m = monitors_[p];
  if (m.state == PortState::kDead) {
    return;
  }
  ++stats_.port_deaths;
  m.status_skeptic.Penalize(node_->now());
  if (flight_->armed()) {
    obs::FlightEvent ev;
    ev.time = node_->now();
    ev.epoch = engine_.epoch();
    ev.kind = obs::FlightEventKind::kSkepticTrip;
    ev.port = static_cast<std::int16_t>(p);
    ev.a = 0;  // status skeptic
    ev.b = static_cast<std::uint64_t>(m.status_skeptic.level());
    ev.detail = reason;
    flight_->Record(ev);
  }
  m.clean_since = node_->now();
  m.blocked_intervals = 0;
  m.stuck_intervals = 0;
  TransitionPort(p, PortState::kDead, reason);
}

PortVector Autopilot::HostPorts() const {
  PortVector v;
  for (PortNum p = kFirstExternalPort; p < kPortsPerSwitch; ++p) {
    if (monitors_[p].state == PortState::kHost) {
      v.Set(p);
    }
  }
  return v;
}

std::vector<PortNum> Autopilot::GoodPorts() const {
  std::vector<PortNum> v;
  for (PortNum p = kFirstExternalPort; p < kPortsPerSwitch; ++p) {
    if (monitors_[p].state == PortState::kSwitchGood) {
      v.push_back(p);
    }
  }
  return v;
}

// --- connectivity monitor (section 6.5.4) ---

void Autopilot::ProbePorts() {
  Tick now = node_->now();
  for (PortNum p = kFirstExternalPort; p < kPortsPerSwitch; ++p) {
    PortMonitor& m = monitors_[p];
    if (m.state != PortState::kSwitchWho && m.state != PortState::kSwitchLoop &&
        m.state != PortState::kSwitchGood) {
      continue;
    }
    // Time out an outstanding probe.
    if (m.probe_outstanding && now - m.probe_sent_at >= config_.probe_timeout) {
      m.probe_outstanding = false;
      ++m.probe_misses;
      ++stats_.probe_timeouts;
      m.good_streak_start = -1;
      if (m.probe_misses >= config_.probe_misses_to_fail) {
        m.probe_misses = 0;
        m.conn_skeptic.Penalize(now);
        if (flight_->armed()) {
          obs::FlightEvent ev;
          ev.time = now;
          ev.epoch = engine_.epoch();
          ev.kind = obs::FlightEventKind::kSkepticTrip;
          ev.port = static_cast<std::int16_t>(p);
          ev.a = 1;  // connectivity skeptic
          ev.b = static_cast<std::uint64_t>(m.conn_skeptic.level());
          ev.detail = "probe timeouts";
          flight_->Record(ev);
        }
        if (m.state == PortState::kSwitchGood) {
          TransitionPort(p, PortState::kSwitchWho, "probe timeouts");
        }
      }
    }
    Tick period = m.state == PortState::kSwitchGood
                      ? config_.probe_period_good
                      : config_.probe_period_unknown;
    if (!m.probe_outstanding &&
        (m.last_probe_at < 0 || now - m.last_probe_at >= period)) {
      SendProbe(p);
    }
  }
}

void Autopilot::SendProbe(PortNum p) {
  PortMonitor& m = monitors_[p];
  ConnectivityMsg probe;
  probe.kind = ConnectivityMsg::Kind::kProbe;
  probe.seq = ++m.probe_seq;
  probe.sender_uid = node_->uid();
  probe.sender_port = static_cast<std::uint8_t>(p);
  m.probe_outstanding = true;
  m.probe_sent_at = node_->now();
  m.last_probe_at = node_->now();
  ++stats_.probes_sent;
  RunOnCpu(config_.cost_packet_send, [this, p, probe] {
    Packet pk;
    pk.dest = OneHopAddress(p);
    pk.src = kAddrLocalCp;
    pk.type = PacketType::kConnectivity;
    pk.payload = probe.Serialize();
    // The timeout clock runs from the actual transmission, so a busy
    // control processor does not fabricate probe misses.
    monitors_[p].probe_sent_at = node_->now();
    node_->CpSend(MakePacket(std::move(pk)));
  });
}

void Autopilot::OnProbeReply(PortNum p, const ConnectivityMsg& msg) {
  PortMonitor& m = monitors_[p];
  if (!m.probe_outstanding || msg.echo_seq != m.probe_seq ||
      msg.echo_uid != node_->uid() || msg.echo_port != p) {
    return;  // not the reply we are waiting for
  }
  ++stats_.probe_replies_handled;
  m.probe_outstanding = false;
  m.probe_misses = 0;
  Tick now = node_->now();

  if (msg.sender_uid == node_->uid()) {
    // Our own probe came back: a looped cable or a reflecting link.
    if (m.state != PortState::kSwitchLoop) {
      TransitionPort(p, PortState::kSwitchLoop, "own uid echoed");
    }
    return;
  }

  Uid uid = msg.sender_uid;
  PortNum rport = msg.sender_port;
  switch (m.state) {
    case PortState::kSwitchGood:
      if (uid != m.neighbor_uid || rport != m.neighbor_port) {
        // The switch at the other end changed identity.
        m.neighbor_uid = uid;
        m.neighbor_port = rport;
        engine_.Trigger("neighbor identity changed");
      }
      break;
    case PortState::kSwitchWho:
    case PortState::kSwitchLoop: {
      if (m.state == PortState::kSwitchLoop) {
        TransitionPort(p, PortState::kSwitchWho, "loop cleared");
      }
      if (m.good_streak_start < 0 || uid != m.neighbor_uid ||
          rport != m.neighbor_port) {
        m.good_streak_start = now;
      }
      m.neighbor_uid = uid;
      m.neighbor_port = rport;
      if (now - m.good_streak_start >=
          m.conn_skeptic.RequiredHolddown(now)) {
        TransitionPort(p, PortState::kSwitchGood, "connectivity verified");
      }
      break;
    }
    default:
      break;
  }
}

// --- forwarding table management ---

void Autopilot::LoadOneHopTable() {
  RunOnCpu(config_.cost_table_load, [this] {
    expected_table_ = ForwardingTable::OneHopOnly();
    node_->LoadForwardingTable(expected_table_);
  });
}

void Autopilot::ApplyConfig(const NetTopology& topo, int self_index,
                            std::uint64_t epoch) {
  topology_ = topo;
  self_index_ = self_index;
  switch_num_ = topo.switches[self_index].assigned_num;
  if (flight_->armed()) {
    obs::FlightEvent ev;
    ev.time = node_->now();
    ev.epoch = epoch;
    ev.kind = obs::FlightEventKind::kConfigCompute;
    ev.a = static_cast<std::uint64_t>(topo.size());
    flight_->Record(ev);
  }
  RunOnCpu(config_.cost_table_compute, [this, epoch] {
    if (!topology_.has_value()) {
      return;
    }
    // Route from the freshest local view of host ports.
    topology_->switches[self_index_].host_ports = HostPorts();
    SpanningTree tree = ComputeSpanningTree(*topology_);
    ForwardingTable table =
        BuildForwardingTable(*topology_, tree, self_index_);
    RunOnCpu(config_.cost_table_load, [this, table = std::move(table), epoch] {
      node_->LoadForwardingTable(table);
      expected_table_ = table;
      ++stats_.tables_loaded;
      stats_.last_table_load = node_->now();
      node_->log().Logf(node_->now(),
                        "config applied: epoch %llu, switch number %u",
                        static_cast<unsigned long long>(epoch), switch_num_);
    });
  });
}

void Autopilot::PatchLocalTable(const char* reason) {
  if (!topology_.has_value() || engine_.in_progress()) {
    return;
  }
  node_->log().Logf(node_->now(), "local table patch (%s)", reason);
  // Host-port changes are purely local: rebuild this switch's table with
  // the updated host set; no network-wide reconfiguration (Figure 8).
  RunOnCpu(config_.cost_table_compute / 4, [this] {
    if (!topology_.has_value() || engine_.in_progress()) {
      return;
    }
    topology_->switches[self_index_].host_ports = HostPorts();
    SpanningTree tree = ComputeSpanningTree(*topology_);
    ForwardingTable table =
        BuildForwardingTable(*topology_, tree, self_index_);
    RunOnCpu(config_.cost_table_load, [this, table = std::move(table)] {
      if (engine_.in_progress()) {
        return;  // a reconfiguration superseded the patch
      }
      node_->LoadForwardingTable(table);
      expected_table_ = table;
      ++stats_.tables_loaded;
      stats_.last_table_load = node_->now();
    });
  });
}

}  // namespace autonet
