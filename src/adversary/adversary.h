// The feedback-driven fault adversary (the "adaptive attacker" the chaos
// corpus cannot script): runs inside a chaos run and reads *live* network
// state — the elected spanning-tree root, current epochs, the reconfig phase
// each switch is in (from its flight ring), skeptic levels and port
// classifications — to decide its next move.  Strategies:
//
//   root-chase       the moment the tree stabilizes, cut a cable adjacent to
//                    the elected root (and heal the previous cut), so every
//                    election is immediately invalidated
//   phase-snipe      cut a cable precisely while some switch is inside a
//                    chosen reconfiguration phase (monitor/tree/fanin/
//                    compute/install, the post-mortem vocabulary)
//   storm            floods a live control processor with Byzantine
//                    tree-position packets crafted near the victim's real
//                    epoch (the CRC-escape injection path)
//   flap-resonance   watches one cable's endpoint classifications and
//                    re-cuts the instant the skeptic re-admits the link —
//                    a flap oscillating at the hold-down period, whatever
//                    the hold-down currently is
//   corrupt-*        memory faults in a running switch: forwarding-table
//                    bits, skeptic level/event registers, port-state
//                    registers, the epoch register (forward, behind, or
//                    runaway past kMaxEpochJump).  Recovery must be
//                    Dolev-style self-stabilization: the run's invariant +
//                    SLO oracles must still go green within the
//                    diameter-scaled deadline.
//
// Every move is appended to a deterministic transcript (a pure function of
// scenario, topology, and seed) that the campaign report carries per run, so
// any adversarial finding replays from its reproducer line.  The engine
// tracks the cables it cut and heals them when it retires: lasting damage
// must come from what the *network* got wrong, not from an unfinished
// script.
#ifndef SRC_ADVERSARY_ADVERSARY_H_
#define SRC_ADVERSARY_ADVERSARY_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "src/adversary/spec.h"
#include "src/core/network.h"
#include "src/sim/random.h"
#include "src/sim/timer.h"

namespace autonet {
namespace adversary {

class Engine {
 public:
  // The engine reads and attacks `net`; its randomness is derived from
  // `seed` and the strategy, so one seed produces one attack sequence.
  Engine(Network* net, Spec spec, std::uint64_t seed);

  // Starts polling at `start` (absolute sim time, >= now).  The attack
  // window is [start, start + spec.duration]; the engine restores its own
  // cable cuts when it retires.
  void Arm(Tick start);

  // Absolute sim time by which the engine has retired (the run must be
  // driven at least this far so the final heal executes).
  Tick end() const { return end_; }

  const Spec& spec() const { return spec_; }
  int moves_made() const { return moves_; }

  // One line per observation/move, e.g.
  //   "t=412ms root-chase: cut cable 2 at root s1 (epoch 9)".
  const std::vector<std::string>& transcript() const { return transcript_; }
  // FNV-1a over the transcript lines; byte-identical across replays of the
  // same (scenario, topology, seed).
  std::uint64_t TranscriptHash() const;

 private:
  void Poll();
  void Finish();

  void StepRootChase();
  void StepPhaseSnipe();
  void StepStorm();
  void StepFlapResonance();
  void StepCorruptTable();
  void StepCorruptSkeptic();
  void StepCorruptPort();
  void StepCorruptEpoch();

  // --- state-read surface ---
  // All alive switches quiescent and agreeing on epoch and root.
  bool StableNow() const;
  // Index of the switch that believes itself root (-1 if none/dead).
  int FindRootSwitch() const;
  // The reconfiguration phase `sw` is in, from its flight ring's newest
  // event ("monitor" when no reconfiguration is in progress).
  const char* PhaseOf(int sw) const;
  std::vector<int> AliveSwitches() const;
  // Spec cable indices adjacent to `sw`, uncut, with both endpoints alive.
  std::vector<int> CandidateCablesAt(int sw) const;
  // Attached external ports of `sw`.
  std::vector<PortNum> AttachedPorts(int sw) const;

  void CutNow(int cable);
  void RestoreNow(int cable);
  void RestoreAllCuts(const char* why);
  void Note(const char* fmt, ...);
  // Tags the victim's flight ring so post-mortem timelines show the move
  // (detail must be a static-lifetime string).
  void MarkFlight(int sw, const char* detail);

  Network* net_;
  Spec spec_;
  mutable Rng rng_;
  PeriodicTask poll_;

  Tick armed_at_ = 0;
  Tick end_ = 0;
  int moves_ = 0;
  bool finished_ = false;

  std::set<int> cuts_;      // cables this engine cut and has not healed
  Tick last_cut_at_ = -1;
  int flap_cable_ = -1;     // flap-resonance's chosen victim

  std::vector<std::string> transcript_;
};

}  // namespace adversary
}  // namespace autonet

#endif  // SRC_ADVERSARY_ADVERSARY_H_
