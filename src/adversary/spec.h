// Adversary specification for the feedback-driven fault adversary: which
// attack strategy to run against the network under test and its knobs.  A
// Spec has a text form — "root-chase moves 3 duration 6s period 100ms" —
// that round-trips through ParseSpec, so a chaos scenario can carry its
// adversary inline and a reproducer line fully reproduces the attack.
#ifndef SRC_ADVERSARY_SPEC_H_
#define SRC_ADVERSARY_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/time.h"

namespace autonet {
namespace adversary {

enum class Strategy : std::uint8_t {
  kNone,           // adversary disabled
  kRootChase,      // cut the link nearest the elected root once a tree settles
  kPhaseSnipe,     // cut a cable precisely during a chosen reconfig phase
  kStorm,          // Byzantine control-message floods into live CPs
  kFlapResonance,  // re-cut a cable the moment the skeptic re-admits it
  kCorruptTable,   // flip forwarding-table bits in a running switch
  kCorruptSkeptic, // overwrite skeptic level/event registers out of range
  kCorruptPort,    // overwrite a port-state register with a wrong state
  kCorruptEpoch,   // overwrite the epoch register (forward, behind, runaway)
};

const char* StrategyName(Strategy strategy);

// Time literal in the scenario grammar's forms ("250ms", "3s"); kept here
// because chaos depends on adversary, not the other way around.  Used by
// Spec::ToText and the engine's transcript lines.
std::string TimeText(Tick t);

struct Spec {
  Strategy strategy = Strategy::kNone;
  int moves = 4;                 // attack moves before the adversary retires
  Tick duration = 4 * kSecond;   // attack window measured from arming
  Tick period = 0;               // state-poll cadence; 0 = strategy default
  std::string phase = "compute"; // phase-snipe target:
                                 //   monitor|tree|fanin|compute|install
  int burst = 4;                 // storm: Byzantine packets per move
  std::uint64_t amount = 3;      // corrupt-epoch: forward distance;
                                 //   0 = runaway beyond kMaxEpochJump

  bool enabled() const { return strategy != Strategy::kNone; }

  // The poll cadence actually used: `period` if set, otherwise a
  // per-strategy default (snipes and resonance need a fine trigger).
  Tick effective_period() const;

  // The text form, omitting knobs the strategy does not use.  Round-trips
  // through ParseSpecText.
  std::string ToText() const;
};

// Parses `tokens[start..]` as `<strategy> [key value]...` where keys are
// moves/duration/period/phase/burst/amount and times take unit suffixes
// (ns/us/ms/s).  Returns false with *error set on a bad token.
bool ParseSpec(const std::vector<std::string>& tokens, std::size_t start,
               Spec* out, std::string* error);

// Convenience: tokenizes `text` (whitespace-separated) and calls ParseSpec.
bool ParseSpecText(const std::string& text, Spec* out, std::string* error);

}  // namespace adversary
}  // namespace autonet

#endif  // SRC_ADVERSARY_SPEC_H_
