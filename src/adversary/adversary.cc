#include "src/adversary/adversary.h"

#include <cstdarg>
#include <cstdio>

#include "src/autopilot/port_state.h"
#include "src/autopilot/reconfig.h"
#include "src/common/packet.h"
#include "src/obs/flight.h"

namespace autonet {
namespace adversary {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

// How long a phase-snipe cut is left in place before the engine heals it and
// stalks the next phase window: long enough to land inside the wave it
// disrupted, short enough that snipes do not degenerate into permanent cuts.
constexpr Tick kSnipeDwell = 250 * kMillisecond;

// Flap-resonance restores this long after each cut; the interesting timing
// is the *re-cut*, which waits for the skeptic to re-admit the link.
constexpr Tick kFlapDown = 50 * kMillisecond;

const PortState kAllPortStates[] = {
    PortState::kDead,      PortState::kChecking,   PortState::kHost,
    PortState::kSwitchWho, PortState::kSwitchLoop, PortState::kSwitchGood,
};

}  // namespace

Engine::Engine(Network* net, Spec spec, std::uint64_t seed)
    : net_(net),
      spec_(spec),
      // Mix the strategy in so two adversaries with the same run seed (e.g.
      // a scenario-level and a campaign-level spec in different runs) do not
      // mirror each other's choices.
      rng_(seed * kFnvPrime ^
           (static_cast<std::uint64_t>(spec.strategy) + 0xAD5EC0DEull)),
      poll_(&net->sim(), [this] { Poll(); }) {}

void Engine::Arm(Tick start) {
  if (!spec_.enabled()) {
    return;
  }
  Tick now = net_->sim().now();
  armed_at_ = start < now ? now : start;
  // Two extra periods of slack: the poll at/after the window edge performs
  // the final heal, and the runner drives the sim through end().
  end_ = armed_at_ + spec_.duration + 2 * spec_.effective_period() +
         kMillisecond;
  poll_.Start(spec_.effective_period(),
              armed_at_ - now + spec_.effective_period());
  Note("armed (%s)", spec_.ToText().c_str());
}

std::uint64_t Engine::TranscriptHash() const {
  std::uint64_t h = kFnvOffset;
  for (const std::string& line : transcript_) {
    for (char c : line) {
      h = (h ^ static_cast<unsigned char>(c)) * kFnvPrime;
    }
    h = (h ^ static_cast<unsigned char>('\n')) * kFnvPrime;
  }
  return h;
}

void Engine::Poll() {
  if (finished_) {
    return;
  }
  if (net_->sim().now() >= armed_at_ + spec_.duration) {
    Finish();
    return;
  }
  switch (spec_.strategy) {
    case Strategy::kNone:
      break;
    case Strategy::kRootChase:
      StepRootChase();
      break;
    case Strategy::kPhaseSnipe:
      StepPhaseSnipe();
      break;
    case Strategy::kStorm:
      StepStorm();
      break;
    case Strategy::kFlapResonance:
      StepFlapResonance();
      break;
    case Strategy::kCorruptTable:
      StepCorruptTable();
      break;
    case Strategy::kCorruptSkeptic:
      StepCorruptSkeptic();
      break;
    case Strategy::kCorruptPort:
      StepCorruptPort();
      break;
    case Strategy::kCorruptEpoch:
      StepCorruptEpoch();
      break;
  }
}

void Engine::Finish() {
  if (finished_) {
    return;
  }
  finished_ = true;
  RestoreAllCuts("retiring");
  Note("done: %d move(s)", moves_);
  poll_.Stop();
}

// --- strategies ---

void Engine::StepRootChase() {
  if (moves_ >= spec_.moves || !StableNow()) {
    return;
  }
  int root = FindRootSwitch();
  if (root < 0) {
    return;
  }
  RestoreAllCuts("chasing root");
  std::vector<int> cands = CandidateCablesAt(root);
  if (cands.empty()) {
    return;
  }
  int cable = cands[rng_.UniformInt(0, static_cast<int>(cands.size()) - 1)];
  CutNow(cable);
  MarkFlight(root, "root-chase");
  Note("cut cable %d at root %s (epoch %llu)", cable,
       net_->switch_at(root).name().c_str(),
       static_cast<unsigned long long>(net_->autopilot_at(root).epoch()));
  ++moves_;
}

void Engine::StepPhaseSnipe() {
  Tick now = net_->sim().now();
  if (!cuts_.empty()) {
    if (now - last_cut_at_ >= kSnipeDwell) {
      RestoreAllCuts("snipe dwell over");
    }
    return;  // one snipe in flight at a time
  }
  if (moves_ >= spec_.moves) {
    return;
  }
  std::vector<int> victims;
  if (spec_.phase == "monitor") {
    // The monitor snipe targets the converged steady state.
    if (StableNow()) {
      victims = AliveSwitches();
    }
  } else {
    for (int sw : AliveSwitches()) {
      if (spec_.phase == PhaseOf(sw)) {
        victims.push_back(sw);
      }
    }
  }
  if (victims.empty()) {
    return;
  }
  int sw = victims[rng_.UniformInt(0, static_cast<int>(victims.size()) - 1)];
  std::vector<int> cands = CandidateCablesAt(sw);
  if (cands.empty()) {
    return;
  }
  int cable = cands[rng_.UniformInt(0, static_cast<int>(cands.size()) - 1)];
  CutNow(cable);
  MarkFlight(sw, "phase-snipe");
  Note("cut cable %d during %s at %s (epoch %llu)", cable, spec_.phase.c_str(),
       net_->switch_at(sw).name().c_str(),
       static_cast<unsigned long long>(net_->autopilot_at(sw).epoch()));
  ++moves_;
}

void Engine::StepStorm() {
  if (moves_ >= spec_.moves) {
    return;
  }
  std::vector<int> alive = AliveSwitches();
  if (alive.empty()) {
    return;
  }
  int sw = alive[rng_.UniformInt(0, static_cast<int>(alive.size()) - 1)];
  std::uint64_t epoch = net_->autopilot_at(sw).epoch();
  for (int b = 0; b < spec_.burst; ++b) {
    // A position packet near the victim's real epoch claiming a tiny (i.e.
    // election-winning) root uid: the worst believable lie.
    ReconfigMsg msg;
    msg.kind = ReconfigMsg::Kind::kPosition;
    msg.epoch = epoch + static_cast<std::uint64_t>(rng_.UniformInt(1, 3));
    msg.sender_uid = Uid(rng_.NextU64());
    msg.root_uid = Uid(static_cast<std::uint64_t>(rng_.UniformInt(1, 7)));
    msg.level = static_cast<std::uint16_t>(rng_.UniformInt(0, 3));
    msg.pos_seq = static_cast<std::uint32_t>(rng_.UniformInt(1, 1000));

    PortNum port = static_cast<PortNum>(
        rng_.UniformInt(kFirstExternalPort, kPortsPerSwitch - 1));
    Packet p;
    p.dest = kAddrLocalCp;
    p.src = OneHopAddress(port);
    p.type = PacketType::kReconfig;
    p.payload = msg.Serialize();
    PacketRef pkt = MakePacket(std::move(p));

    // Same CRC-escape delivery as check::FuzzInject: the body arrives as an
    // intact packet straight in the control processor's reassembly port.
    CpPort& cp = net_->switch_at(sw).cp_port();
    cp.NoteArrivalPort(port);
    cp.SendBegin(pkt);
    for (std::uint32_t i = 0; i < pkt->WireSize(); ++i) {
      cp.SendByte(pkt, i);
    }
    cp.SendEnd(EndFlags{});
  }
  MarkFlight(sw, "storm");
  Note("flooded %s with %d Byzantine positions near epoch %llu",
       net_->switch_at(sw).name().c_str(), spec_.burst,
       static_cast<unsigned long long>(epoch));
  ++moves_;
}

void Engine::StepFlapResonance() {
  Tick now = net_->sim().now();
  if (flap_cable_ < 0) {
    std::vector<int> cands;
    const auto& cables = net_->spec().cables;
    for (int i = 0; i < static_cast<int>(cables.size()); ++i) {
      if (net_->switch_alive(cables[i].sw_a) &&
          net_->switch_alive(cables[i].sw_b)) {
        cands.push_back(i);
      }
    }
    if (cands.empty()) {
      return;
    }
    flap_cable_ =
        cands[rng_.UniformInt(0, static_cast<int>(cands.size()) - 1)];
    Note("targeting cable %d", flap_cable_);
  }
  const TopoSpec::CableSpec& c = net_->spec().cables[flap_cable_];
  if (!net_->switch_alive(c.sw_a) || !net_->switch_alive(c.sw_b)) {
    return;
  }
  if (cuts_.count(flap_cable_) != 0) {
    if (now - last_cut_at_ >= kFlapDown) {
      RestoreNow(flap_cable_);
      Note("restored cable %d", flap_cable_);
    }
    return;
  }
  if (moves_ >= spec_.moves) {
    return;
  }
  // The resonant edge: cut again the instant both endpoint skeptics have
  // served their hold-down and re-admitted the link.
  if (net_->autopilot_at(c.sw_a).port_state(c.port_a) !=
          PortState::kSwitchGood ||
      net_->autopilot_at(c.sw_b).port_state(c.port_b) !=
          PortState::kSwitchGood) {
    return;
  }
  int level = net_->autopilot_at(c.sw_a).skeptic_level(c.port_a, false);
  CutNow(flap_cable_);
  MarkFlight(c.sw_a, "flap-resonance");
  Note("re-cut cable %d as it was re-admitted (status skeptic level %d)",
       flap_cable_, level);
  ++moves_;
}

void Engine::StepCorruptTable() {
  if (moves_ >= spec_.moves) {
    return;
  }
  std::vector<int> alive = AliveSwitches();
  if (alive.empty()) {
    return;
  }
  int sw = alive[rng_.UniformInt(0, static_cast<int>(alive.size()) - 1)];
  // Prefer a real registered host address — flipping a live route is
  // strictly worse for the network than flipping an unused entry.
  std::vector<std::uint16_t> host_addrs;
  for (int h = 0; h < net_->num_hosts(); ++h) {
    if (net_->driver_at(h).HasAddress()) {
      host_addrs.push_back(net_->driver_at(h).short_address().value());
    }
  }
  ShortAddress victim =
      !host_addrs.empty() && rng_.Bernoulli(0.75)
          ? ShortAddress(host_addrs[rng_.UniformInt(
                0, static_cast<int>(host_addrs.size()) - 1)])
          : ShortAddress(static_cast<std::uint16_t>(
                rng_.UniformInt(0x010, 0x7EF)));
  PortNum inport = static_cast<PortNum>(
      rng_.UniformInt(0, kPortsPerSwitch - 1));
  std::uint16_t mask =
      static_cast<std::uint16_t>(rng_.UniformInt(1, 0x3FFF));
  net_->switch_at(sw).CorruptTableEntry(inport, victim, mask);
  MarkFlight(sw, "corrupt-table");
  Note("flipped table bits 0x%04x at %s [inport %d, addr 0x%03x]", mask,
       net_->switch_at(sw).name().c_str(), inport, victim.value());
  ++moves_;
}

void Engine::StepCorruptSkeptic() {
  if (moves_ >= spec_.moves) {
    return;
  }
  std::vector<int> alive = AliveSwitches();
  if (alive.empty()) {
    return;
  }
  int sw = alive[rng_.UniformInt(0, static_cast<int>(alive.size()) - 1)];
  std::vector<PortNum> ports = AttachedPorts(sw);
  if (ports.empty()) {
    return;
  }
  PortNum p =
      ports[rng_.UniformInt(0, static_cast<int>(ports.size()) - 1)];
  bool connectivity = rng_.Bernoulli(0.5);
  Tick now = net_->sim().now();
  int variant = static_cast<int>(rng_.UniformInt(0, 2));
  int level;
  Tick last_event = now;
  const char* shape;
  if (variant == 0) {
    level = -static_cast<int>(rng_.UniformInt(1, 100));
    shape = "negative level";
  } else if (variant == 1) {
    level = static_cast<int>(rng_.UniformInt(63, 1 << 20));
    shape = "level beyond max";
  } else {
    level = static_cast<int>(rng_.UniformInt(0, 62));
    last_event = now + kSecond * rng_.UniformInt(1, 3600);
    shape = "event stamp from the future";
  }
  net_->autopilot_at(sw).CorruptSkeptic(p, connectivity, level, last_event);
  MarkFlight(sw, "corrupt-skeptic");
  Note("overwrote %s skeptic at %s port %d: %s (level %d)",
       connectivity ? "connectivity" : "status",
       net_->switch_at(sw).name().c_str(), p, shape, level);
  ++moves_;
}

void Engine::StepCorruptPort() {
  if (moves_ >= spec_.moves) {
    return;
  }
  std::vector<int> alive = AliveSwitches();
  if (alive.empty()) {
    return;
  }
  int sw = alive[rng_.UniformInt(0, static_cast<int>(alive.size()) - 1)];
  std::vector<PortNum> ports = AttachedPorts(sw);
  if (ports.empty()) {
    return;
  }
  PortNum p =
      ports[rng_.UniformInt(0, static_cast<int>(ports.size()) - 1)];
  PortState cur = net_->autopilot_at(sw).port_state(p);
  PortState next = cur;
  while (next == cur) {
    next = kAllPortStates[rng_.UniformInt(0, 5)];
  }
  net_->autopilot_at(sw).CorruptPortState(p, next);
  MarkFlight(sw, "corrupt-port");
  Note("overwrote port %d at %s: %s -> %s", p,
       net_->switch_at(sw).name().c_str(), PortStateName(cur),
       PortStateName(next));
  ++moves_;
}

void Engine::StepCorruptEpoch() {
  if (moves_ >= spec_.moves) {
    return;
  }
  // Prefer a switch mid-reconfiguration: a wrong epoch register there
  // derails a live wave instead of lying dormant.
  std::vector<int> alive = AliveSwitches();
  std::vector<int> busy;
  for (int sw : alive) {
    if (net_->autopilot_at(sw).reconfig_in_progress()) {
      busy.push_back(sw);
    }
  }
  const std::vector<int>& pool = busy.empty() ? alive : busy;
  if (pool.empty()) {
    return;
  }
  int sw = pool[rng_.UniformInt(0, static_cast<int>(pool.size()) - 1)];
  Autopilot& ap = net_->autopilot_at(sw);
  std::uint64_t cur = ap.epoch();
  std::uint64_t target;
  const char* how;
  if (spec_.amount == 0) {
    // Runaway: past the believable-jump guard, so every message this switch
    // now considers "stale" is implausibly so.
    target = cur + ReconfigEngine::kMaxEpochJump + 1 +
             static_cast<std::uint64_t>(rng_.UniformInt(0, 1 << 20));
    how = "runaway";
  } else if (cur >= 2 && rng_.Bernoulli(0.5)) {
    target = cur - (cur < spec_.amount ? cur : spec_.amount);
    how = "behind";
  } else {
    target = cur + spec_.amount;
    how = "ahead";
  }
  ap.engine().CorruptEpochRegister(target);
  MarkFlight(sw, "corrupt-epoch");
  Note("overwrote epoch register at %s: %llu -> %llu (%s)",
       net_->switch_at(sw).name().c_str(),
       static_cast<unsigned long long>(cur),
       static_cast<unsigned long long>(target), how);
  ++moves_;
}

// --- state-read surface ---

bool Engine::StableNow() const {
  bool first = true;
  std::uint64_t epoch = 0;
  Uid root;
  for (int i = 0; i < net_->num_switches(); ++i) {
    if (!net_->switch_alive(i)) {
      continue;
    }
    Autopilot& ap = net_->autopilot_at(i);
    if (!ap.Quiescent() || ap.reconfig_in_progress()) {
      return false;
    }
    if (first) {
      epoch = ap.epoch();
      root = ap.engine().position_root();
      first = false;
    } else if (ap.epoch() != epoch ||
               ap.engine().position_root() != root) {
      return false;
    }
  }
  return !first;
}

int Engine::FindRootSwitch() const {
  for (int i = 0; i < net_->num_switches(); ++i) {
    if (net_->switch_alive(i) &&
        net_->autopilot_at(i).engine().position_root() ==
            net_->autopilot_at(i).uid()) {
      return i;
    }
  }
  return -1;
}

const char* Engine::PhaseOf(int sw) const {
  if (!net_->autopilot_at(sw).reconfig_in_progress()) {
    return "monitor";
  }
  const obs::FlightRing* ring =
      net_->sim().flight().Find(net_->switch_at(sw).name());
  const obs::FlightEvent* last = ring != nullptr ? ring->Last() : nullptr;
  if (last == nullptr) {
    return "tree";
  }
  switch (last->kind) {
    case obs::FlightEventKind::kReportSend:
    case obs::FlightEventKind::kReportRecv:
      return "fanin";
    case obs::FlightEventKind::kTermination:
    case obs::FlightEventKind::kConfigRecv:
    case obs::FlightEventKind::kConfigCompute:
      return "compute";
    case obs::FlightEventKind::kRouteInstall:
      return "install";
    default:
      return "tree";
  }
}

std::vector<int> Engine::AliveSwitches() const {
  std::vector<int> out;
  for (int i = 0; i < net_->num_switches(); ++i) {
    if (net_->switch_alive(i)) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<int> Engine::CandidateCablesAt(int sw) const {
  std::vector<int> out;
  const auto& cables = net_->spec().cables;
  for (int i = 0; i < static_cast<int>(cables.size()); ++i) {
    if ((cables[i].sw_a == sw || cables[i].sw_b == sw) &&
        cuts_.count(i) == 0 && net_->switch_alive(cables[i].sw_a) &&
        net_->switch_alive(cables[i].sw_b)) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<PortNum> Engine::AttachedPorts(int sw) const {
  std::vector<PortNum> out;
  for (PortNum p = kFirstExternalPort; p < kPortsPerSwitch; ++p) {
    if (net_->switch_at(sw).link_unit(p).attached()) {
      out.push_back(p);
    }
  }
  return out;
}

// --- mechanics ---

void Engine::CutNow(int cable) {
  net_->CutCable(cable);
  cuts_.insert(cable);
  last_cut_at_ = net_->sim().now();
}

void Engine::RestoreNow(int cable) {
  net_->RestoreCable(cable);
  cuts_.erase(cable);
}

void Engine::RestoreAllCuts(const char* why) {
  while (!cuts_.empty()) {
    int cable = *cuts_.begin();
    RestoreNow(cable);
    Note("restored cable %d (%s)", cable, why);
  }
}

void Engine::Note(const char* fmt, ...) {
  char buf[256];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  transcript_.push_back("t=" + TimeText(net_->sim().now()) + " " +
                        StrategyName(spec_.strategy) + ": " + buf);
}

void Engine::MarkFlight(int sw, const char* detail) {
  obs::FlightRing* ring = net_->sim().flight().Ring(
      net_->switch_at(sw).name(), net_->switch_at(sw).uid());
  if (!ring->armed()) {
    return;
  }
  obs::FlightEvent e;
  e.time = net_->sim().now();
  e.epoch = net_->autopilot_at(sw).epoch();
  e.kind = obs::FlightEventKind::kAdversary;
  e.detail = detail;
  ring->Record(e);
}

}  // namespace adversary
}  // namespace autonet
