#include "src/adversary/spec.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace autonet {
namespace adversary {

const char* StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kNone:
      return "none";
    case Strategy::kRootChase:
      return "root-chase";
    case Strategy::kPhaseSnipe:
      return "phase-snipe";
    case Strategy::kStorm:
      return "storm";
    case Strategy::kFlapResonance:
      return "flap-resonance";
    case Strategy::kCorruptTable:
      return "corrupt-table";
    case Strategy::kCorruptSkeptic:
      return "corrupt-skeptic";
    case Strategy::kCorruptPort:
      return "corrupt-port";
    case Strategy::kCorruptEpoch:
      return "corrupt-epoch";
  }
  return "none";
}

std::string TimeText(Tick t) {
  auto exact = [&](Tick unit) { return t % unit == 0; };
  char buf[32];
  if (t != 0 && exact(kSecond)) {
    std::snprintf(buf, sizeof buf, "%llds", static_cast<long long>(t / kSecond));
  } else if (t != 0 && exact(kMillisecond)) {
    std::snprintf(buf, sizeof buf, "%lldms",
                  static_cast<long long>(t / kMillisecond));
  } else if (t != 0 && exact(kMicrosecond)) {
    std::snprintf(buf, sizeof buf, "%lldus",
                  static_cast<long long>(t / kMicrosecond));
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(t));
  }
  return buf;
}

namespace {

bool ParseTime(const std::string& tok, Tick* out) {
  std::size_t i = 0;
  while (i < tok.size() &&
         (std::isdigit(static_cast<unsigned char>(tok[i])) || tok[i] == '.')) {
    ++i;
  }
  if (i == 0 || i == tok.size()) {
    return false;
  }
  double value;
  try {
    std::size_t consumed;
    value = std::stod(tok.substr(0, i), &consumed);
    if (consumed != i) {
      return false;
    }
  } catch (...) {
    return false;
  }
  std::string unit = tok.substr(i);
  double scale;
  if (unit == "ns") {
    scale = 1.0;
  } else if (unit == "us") {
    scale = kMicrosecond;
  } else if (unit == "ms") {
    scale = kMillisecond;
  } else if (unit == "s") {
    scale = kSecond;
  } else {
    return false;
  }
  *out = static_cast<Tick>(std::llround(value * scale));
  return true;
}

bool ParseCount(const std::string& tok, long long* out) {
  try {
    std::size_t consumed;
    long long v = std::stoll(tok, &consumed);
    if (consumed != tok.size() || v < 0) {
      return false;
    }
    *out = v;
    return true;
  } catch (...) {
    return false;
  }
}

bool ValidPhase(const std::string& phase) {
  return phase == "monitor" || phase == "tree" || phase == "fanin" ||
         phase == "compute" || phase == "install";
}

}  // namespace

Tick Spec::effective_period() const {
  if (period > 0) {
    return period;
  }
  switch (strategy) {
    case Strategy::kPhaseSnipe:
      return 2 * kMillisecond;   // phases last single-digit milliseconds
    case Strategy::kFlapResonance:
      return 10 * kMillisecond;  // must catch the re-admit edge promptly
    default:
      return 100 * kMillisecond;
  }
}

std::string Spec::ToText() const {
  std::ostringstream out;
  out << StrategyName(strategy);
  if (strategy == Strategy::kNone) {
    return out.str();
  }
  out << " moves " << moves << " duration " << TimeText(duration);
  if (period > 0) {
    out << " period " << TimeText(period);
  }
  switch (strategy) {
    case Strategy::kPhaseSnipe:
      out << " phase " << phase;
      break;
    case Strategy::kStorm:
      out << " burst " << burst;
      break;
    case Strategy::kCorruptEpoch:
      out << " amount " << amount;
      break;
    default:
      break;
  }
  return out.str();
}

bool ParseSpec(const std::vector<std::string>& tokens, std::size_t start,
               Spec* out, std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = why;
    }
    return false;
  };
  if (start >= tokens.size()) {
    return fail(
        "expected an adversary strategy (root-chase|phase-snipe|storm|"
        "flap-resonance|corrupt-table|corrupt-skeptic|corrupt-port|"
        "corrupt-epoch)");
  }
  Spec spec;
  const std::string& strategy = tokens[start];
  if (strategy == "none") {
    spec.strategy = Strategy::kNone;
  } else if (strategy == "root-chase") {
    spec.strategy = Strategy::kRootChase;
  } else if (strategy == "phase-snipe") {
    spec.strategy = Strategy::kPhaseSnipe;
  } else if (strategy == "storm") {
    spec.strategy = Strategy::kStorm;
  } else if (strategy == "flap-resonance") {
    spec.strategy = Strategy::kFlapResonance;
  } else if (strategy == "corrupt-table") {
    spec.strategy = Strategy::kCorruptTable;
  } else if (strategy == "corrupt-skeptic") {
    spec.strategy = Strategy::kCorruptSkeptic;
  } else if (strategy == "corrupt-port") {
    spec.strategy = Strategy::kCorruptPort;
  } else if (strategy == "corrupt-epoch") {
    spec.strategy = Strategy::kCorruptEpoch;
  } else {
    return fail("unknown adversary strategy '" + strategy + "'");
  }
  for (std::size_t i = start + 1; i < tokens.size(); i += 2) {
    if (i + 1 >= tokens.size()) {
      return fail("adversary key '" + tokens[i] + "' is missing a value");
    }
    const std::string& key = tokens[i];
    const std::string& value = tokens[i + 1];
    long long count = 0;
    Tick t = 0;
    if (key == "moves") {
      if (!ParseCount(value, &count) || count == 0 || count > 1000) {
        return fail("bad moves '" + value + "' (1..1000)");
      }
      spec.moves = static_cast<int>(count);
    } else if (key == "duration") {
      if (!ParseTime(value, &t) || t <= 0) {
        return fail("bad duration '" + value + "'");
      }
      spec.duration = t;
    } else if (key == "period") {
      if (!ParseTime(value, &t) || t <= 0) {
        return fail("bad period '" + value + "'");
      }
      spec.period = t;
    } else if (key == "phase") {
      if (!ValidPhase(value)) {
        return fail("bad phase '" + value +
                    "' (monitor|tree|fanin|compute|install)");
      }
      spec.phase = value;
    } else if (key == "burst") {
      if (!ParseCount(value, &count) || count == 0 || count > 64) {
        return fail("bad burst '" + value + "' (1..64)");
      }
      spec.burst = static_cast<int>(count);
    } else if (key == "amount") {
      if (!ParseCount(value, &count)) {
        return fail("bad amount '" + value + "'");
      }
      spec.amount = static_cast<std::uint64_t>(count);
    } else {
      return fail("unknown adversary key '" + key + "'");
    }
  }
  if (error != nullptr) {
    error->clear();
  }
  *out = spec;
  return true;
}

bool ParseSpecText(const std::string& text, Spec* out, std::string* error) {
  std::vector<std::string> tokens;
  std::string cur;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!cur.empty()) {
        tokens.push_back(std::move(cur));
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) {
    tokens.push_back(std::move(cur));
  }
  return ParseSpec(tokens, 0, out, error);
}

}  // namespace adversary
}  // namespace autonet
