// Seeded pseudo-random source.  Every component that needs randomness takes
// an explicit Rng (or a seed) so simulations are reproducible.
#ifndef SRC_SIM_RANDOM_H_
#define SRC_SIM_RANDOM_H_

#include <cstdint>
#include <random>

namespace autonet {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  double UniformDouble(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  bool Bernoulli(double p) {
    if (p <= 0.0) {
      return false;
    }
    if (p >= 1.0) {
      return true;
    }
    return std::bernoulli_distribution(p)(engine_);
  }

  // Exponentially distributed value with the given mean.
  double Exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  std::uint64_t NextU64() { return engine_(); }

  // Derives an independent stream (e.g. one per switch) from this one.
  Rng Fork() { return Rng(engine_() ^ 0x9E3779B97F4A7C15ull); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace autonet

#endif  // SRC_SIM_RANDOM_H_
