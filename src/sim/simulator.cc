#include "src/sim/simulator.h"

#include <cassert>
#include <utility>

namespace autonet {

Simulator::EventId Simulator::ScheduleAt(Tick when, Callback callback) {
  assert(when >= now_ && "cannot schedule events in the past");
  if (when < now_) {
    when = now_;
  }
  Event event{when, next_seq_++, std::move(callback)};
  EventId id{event.seq};
  live_.insert(event.seq);
  queue_.push(std::move(event));
  return id;
}

bool Simulator::Cancel(EventId id) {
  if (!id.valid()) {
    return false;
  }
  // Lazy cancellation: remove from the live set; the queue entry is
  // discarded when it reaches the head.
  return live_.erase(id.seq) > 0;
}

bool Simulator::PopNext(Event* out) {
  while (!queue_.empty()) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (live_.erase(event.seq) == 0) {
      continue;  // cancelled
    }
    *out = std::move(event);
    return true;
  }
  return false;
}

void Simulator::Dispatch(Event&& event) {
  now_ = event.when;
  ++events_processed_;
  Callback callback = std::move(event.callback);
  callback();
}

bool Simulator::Step() {
  Event event;
  if (!PopNext(&event)) {
    return false;
  }
  Dispatch(std::move(event));
  return true;
}

std::uint64_t Simulator::RunUntil(Tick t) {
  std::uint64_t processed = 0;
  while (!queue_.empty()) {
    if (queue_.top().when > t) {
      // The head may be a cancelled entry with a stale time; skip those.
      if (live_.count(queue_.top().seq) == 0) {
        queue_.pop();
        continue;
      }
      break;
    }
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (live_.erase(event.seq) == 0) {
      continue;
    }
    Dispatch(std::move(event));
    ++processed;
  }
  if (now_ < t) {
    now_ = t;
  }
  return processed;
}

std::uint64_t Simulator::Run(std::uint64_t max_events) {
  std::uint64_t processed = 0;
  while (processed < max_events && Step()) {
    ++processed;
  }
  return processed;
}

}  // namespace autonet
