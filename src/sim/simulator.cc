#include "src/sim/simulator.h"

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <utility>

namespace autonet {

void Simulator::SeqOverflow() {
  std::fprintf(stderr,
               "Simulator: event sequence space exhausted (2^39 schedules)\n");
  std::abort();
}

void Simulator::SlotOverflow() {
  std::fprintf(stderr,
               "Simulator: more than %u events pending simultaneously\n",
               kMaxSlot);
  std::abort();
}

std::uint32_t Simulator::AllocEventSlot() {
  if (!free_events_.empty()) {
    std::uint32_t slot = free_events_.back();
    free_events_.pop_back();
    return slot;
  }
  if (events_.size() > kMaxSlot) {
    SlotOverflow();
  }
  events_.emplace_back();
  return static_cast<std::uint32_t>(events_.size() - 1);
}

std::uint32_t Simulator::AllocTrainSlot() {
  if (!free_trains_.empty()) {
    std::uint32_t slot = free_trains_.back();
    free_trains_.pop_back();
    return slot;
  }
  if (trains_.size() > kMaxSlot) {
    SlotOverflow();
  }
  trains_.emplace_back();
  return static_cast<std::uint32_t>(trains_.size() - 1);
}

void Simulator::FreeEventSlot(std::uint32_t slot) {
  EventSlot& s = events_[slot];
  s.callback = nullptr;
  s.seq = 0;
  free_events_.push_back(slot);
}

void Simulator::FreeTrainSlot(std::uint32_t slot) {
  TrainSlot& t = trains_[slot];
  if (t.handler) {
    t.handler = nullptr;  // raw trains never touch the std::function
  }
  t.fn = nullptr;
  t.id_seq = 0;
  t.cancelled = false;
  t.parked = false;
  free_trains_.push_back(slot);
}

void Simulator::NotePastClamp() {
  // Scheduling in the past is tolerated (clamped to now) but counted, so a
  // component that does it systematically is visible in telemetry.  The
  // counter is created lazily to keep clean runs' metric snapshots free of
  // it.
  if (past_clamped_ == nullptr) {
    past_clamped_ = metrics_.GetCounter("sim.schedule_past_clamped");
  }
  past_clamped_->Increment();
}

Simulator::EventId Simulator::ScheduleAt(Tick when, Callback callback) {
  if (when < now_) {
    when = now_;
    NotePastClamp();
  }
  return ScheduleAtReserved(when, NextSeq(), std::move(callback));
}

Simulator::EventId Simulator::ScheduleAtReserved(Tick when, std::uint64_t seq,
                                                Callback callback) {
  if (when < now_) {
    when = now_;
  }
  std::uint32_t slot = AllocEventSlot();
  EventSlot& s = events_[slot];
  s.callback = std::move(callback);
  s.seq = seq;
  queue_.push(QEntry::Make(when, seq, slot, false), now_);
  ++live_count_;
  return EventId{seq, slot, false};
}

Simulator::EventId Simulator::ScheduleTrain(Tick start, Tick stride,
                                            std::uint32_t count,
                                            TrainHandler handler) {
  return ScheduleTrainAt(start, 0, std::move(handler), stride, count);
}

Simulator::EventId Simulator::ScheduleTrainAt(Tick start, std::uint64_t seq,
                                              TrainHandler handler, Tick stride,
                                              std::uint32_t count) {
  if (start < now_) {
    start = now_;
    NotePastClamp();
  }
  if (seq == 0) {
    seq = NextSeq();
  }
  std::uint32_t slot = AllocTrainSlot();
  TrainSlot& t = trains_[slot];
  t.handler = std::move(handler);
  t.fn = nullptr;
  t.id_seq = seq;
  t.stride = stride;
  t.next_k = 0;
  t.count = count;
  t.cancelled = false;
  t.parked = false;
  queue_.push(QEntry::Make(start, seq, slot, true), now_);
  ++live_count_;
  return EventId{seq, slot, true};
}

Simulator::EventId Simulator::ScheduleTrainRawAt(Tick start, std::uint64_t seq,
                                                 TrainFn fn, void* ctx,
                                                 std::uint64_t arg, Tick stride,
                                                 std::uint32_t count) {
  if (start < now_) {
    start = now_;
    NotePastClamp();
  }
  if (seq == 0) {
    seq = NextSeq();
  }
  std::uint32_t slot = AllocTrainSlot();
  TrainSlot& t = trains_[slot];
  t.fn = fn;
  t.ctx = ctx;
  t.arg = arg;
  t.id_seq = seq;
  t.stride = stride;
  t.next_k = 0;
  t.count = count;
  t.cancelled = false;
  t.parked = false;
  queue_.push(QEntry::Make(start, seq, slot, true), now_);
  ++live_count_;
  return EventId{seq, slot, true};
}

bool Simulator::Cancel(EventId id) {
  if (!id.valid()) {
    return false;
  }
  if (id.train) {
    if (id.slot >= trains_.size()) {
      return false;
    }
    TrainSlot& t = trains_[id.slot];
    if (t.id_seq != id.seq || t.cancelled) {
      return false;  // already ended, or a different train owns the slot
    }
    if (t.parked) {
      // No queue entry exists to drain the slot later; free it now.  The
      // park already removed the train from live_count_.
      FreeTrainSlot(id.slot);
      return true;
    }
    // Inverted cancellation: flag the slot; the train's single queue entry
    // is discarded when it surfaces.  The handler is freed then, not here —
    // it may be the function currently executing.
    t.cancelled = true;
    --live_count_;
    return true;
  }
  if (id.slot >= events_.size()) {
    return false;
  }
  EventSlot& s = events_[id.slot];
  if (s.seq != id.seq) {
    return false;  // already fired, or the slot was recycled
  }
  // Release the callback (and whatever it captures) now; the queue entry
  // fails its generation check when it reaches the head.
  FreeEventSlot(id.slot);
  --live_count_;
  return true;
}

bool Simulator::EntryLive(const QEntry& entry) {
  if (entry.train()) {
    // A train owns its slot for as long as its queue entry exists, so the
    // slot cannot have been recycled under the entry.
    return !trains_[entry.slot()].cancelled;
  }
  return events_[entry.slot()].seq == entry.seq();
}

void Simulator::DispatchTop(QEntry entry) {
  queue_.pop();
  DispatchEntry(entry);
}

void Simulator::DispatchEntry(QEntry entry) {
#ifdef AUTONET_QUEUE_ORDER_CHECK
  // Under a tie chooser, same-tick seq order is deliberately permuted; the
  // audit only holds for the default order.
  if (!chooser_ && (entry.when < check_last_when_ ||
                    (entry.when == check_last_when_ &&
                     entry.seq() < check_last_seq_))) {
    std::fprintf(stderr, "ORDER VIOLATION: (%lld,%llu) after (%lld,%llu)\n",
                 (long long)entry.when, (unsigned long long)entry.seq(),
                 (long long)check_last_when_,
                 (unsigned long long)check_last_seq_);
    std::abort();
  }
  check_last_when_ = entry.when;
  check_last_seq_ = entry.seq();
#endif
  now_ = entry.when;
  ++events_processed_;
  if (!entry.train()) {
    EventSlot& s = events_[entry.slot()];
    Callback callback = std::move(s.callback);
    FreeEventSlot(entry.slot());
    --live_count_;
    callback();
    return;
  }

  // Train firing: deliver index k, then push a fresh entry anchored at the
  // next firing time (the wheel makes pop and push O(1), so no replace-top
  // trick is needed).  The handler may cancel the train (even destroy its
  // owner), so re-reference the slot by index afterwards and only then
  // decide the slot's fate — with the entry already popped, a mid-firing
  // Cancel leaves slot disposal to us.
  std::uint32_t slot = entry.slot();
  std::uint32_t k = trains_[slot].next_k++;
  TrainFn fn = trains_[slot].fn;
  TrainStep step = fn != nullptr
                       ? fn(trains_[slot].ctx, trains_[slot].arg, k)
                       : trains_[slot].handler(k);
  TrainSlot& t = trains_[slot];
  if (t.cancelled) {
    FreeTrainSlot(slot);  // Cancel already adjusted live_count_
    return;
  }
  if (step.kind() == TrainStep::Kind::kPark) {
    // The slot stays owned by the train for a later ResumeTrain.  A parked
    // train is not pending.
    t.parked = true;
    --live_count_;
    return;
  }
  if (step.kind() == TrainStep::Kind::kDone ||
      (t.count != 0 && t.next_k >= t.count)) {
    --live_count_;
    FreeTrainSlot(slot);
    return;
  }
  Tick next_when;
  std::uint64_t next_seq;
  if (step.kind() == TrainStep::Kind::kAt) {
    next_when = step.when;
    if (next_when < now_) {
      next_when = now_;
      NotePastClamp();
    }
    next_seq = step.seq() != 0 ? step.seq() : NextSeq();
  } else {
    // Arithmetic advance.  The fresh sequence lands exactly where a plain
    // event scheduled right after the handler would have, which is what
    // keeps event-chain-to-train conversions timing-invisible.
    next_when = entry.when + t.stride;
    next_seq = NextSeq();
  }
  queue_.push(QEntry::Make(next_when, next_seq, slot, true), now_);
}

void Simulator::SetTieChooser(TieChooser chooser) {
  chooser_ = std::move(chooser);
  if (!chooser_ && !ready_batch_.empty()) {
    // Return batched entries to the queue; they are live, at the current
    // tick, and seq-sorted, so default order resumes exactly.
    for (const QEntry& e : ready_batch_) {
      queue_.push(e, now_);
    }
    ready_batch_.clear();
  }
#ifdef AUTONET_QUEUE_ORDER_CHECK
  // Entries the chooser already permuted past may legitimately fire now;
  // restart the audit at the current tick.
  check_last_seq_ = 0;
#endif
}

bool Simulator::StepChosen(Tick horizon) {
  for (;;) {
    if (ready_batch_.empty()) {
      // Anchor the batch at the earliest live entry's tick.
      for (;;) {
        if (queue_.empty()) {
          return false;
        }
        const QEntry entry = queue_.top(now_);
        if (!EntryLive(entry)) {
          queue_.pop();
          if (entry.train()) {
            FreeTrainSlot(entry.slot());
          }
          continue;
        }
        if (entry.when > horizon) {
          return false;
        }
        queue_.pop();
        ready_batch_.push_back(entry);
        break;
      }
    }
    const Tick when = ready_batch_.front().when;
    if (when > horizon) {
      return false;  // batch anchored beyond a (smaller) later horizon
    }
    // Merge every queued entry at the batch tick: the previous dispatch may
    // have scheduled new ones, including reserved sequences that sort
    // before existing batch members.
    while (!queue_.empty()) {
      const QEntry entry = queue_.top(now_);
      if (!EntryLive(entry)) {
        queue_.pop();
        if (entry.train()) {
          FreeTrainSlot(entry.slot());
        }
        continue;
      }
      if (entry.when != when) {
        break;
      }
      queue_.pop();
      auto it = ready_batch_.end();
      while (it != ready_batch_.begin() && (it - 1)->seq() > entry.seq()) {
        --it;
      }
      ready_batch_.insert(it, entry);
    }
    // Drop members cancelled since they were pulled (an earlier choice this
    // tick may have cancelled them).
    std::size_t w = 0;
    for (std::size_t i = 0; i < ready_batch_.size(); ++i) {
      if (EntryLive(ready_batch_[i])) {
        ready_batch_[w++] = ready_batch_[i];
      } else if (ready_batch_[i].train()) {
        FreeTrainSlot(ready_batch_[i].slot());
      }
    }
    ready_batch_.resize(w);
    if (ready_batch_.empty()) {
      continue;  // the whole tick was cancelled; anchor a new one
    }
    std::uint32_t pick = 0;
    if (ready_batch_.size() > 1) {
      pick = chooser_(when, static_cast<std::uint32_t>(ready_batch_.size()));
      if (pick >= ready_batch_.size()) {
        pick = 0;
      }
    }
    QEntry chosen = ready_batch_[pick];
    ready_batch_.erase(ready_batch_.begin() + pick);
    DispatchEntry(chosen);
    return true;
  }
}

bool Simulator::StepDefault(Tick horizon) {
  while (!queue_.empty()) {
    const QEntry& entry = queue_.top(now_);
    if (!EntryLive(entry)) {
      // A stale head may carry any timestamp (including one beyond the
      // horizon); discard it regardless so it never blocks the scan.
      std::uint32_t slot = entry.slot();
      bool train = entry.train();
      queue_.pop();
      if (train) {
        FreeTrainSlot(slot);  // drained entry of a cancelled train
      }
      continue;
    }
    if (entry.when > horizon) {
      return false;
    }
    DispatchTop(entry);
    return true;
  }
  return false;
}

bool Simulator::Step() {
  constexpr Tick kNoHorizon = std::numeric_limits<Tick>::max();
  if (chooser_) {
    return StepChosen(kNoHorizon);
  }
  return StepDefault(kNoHorizon);
}

std::uint64_t Simulator::RunUntil(Tick t) {
  std::uint64_t processed = 0;
  // Re-test the chooser every iteration: a dispatched callback may install
  // or remove it mid-run (the interleaving explorer does exactly that).
  for (;;) {
    bool advanced = chooser_ ? StepChosen(t) : StepDefault(t);
    if (!advanced) {
      break;
    }
    ++processed;
  }
  if (now_ < t) {
    now_ = t;
  }
  return processed;
}

std::uint64_t Simulator::Run(std::uint64_t max_events) {
  std::uint64_t processed = 0;
  while (processed < max_events && Step()) {
    ++processed;
  }
  return processed;
}

}  // namespace autonet
