// Deterministic discrete-event simulation engine.  All network components —
// link symbol pumps, switch scheduling engines, Autopilot timer tasks — run
// as events on one simulator instance, so the data plane and the control
// plane share a single clock, as they do in the real Autonet.
//
// Determinism: events fire in (time, insertion sequence) order, and all
// randomness flows through seeded Rng instances, so every run is exactly
// reproducible.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/time.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace autonet {

class Simulator {
 public:
  using Callback = std::function<void()>;

  // Identifies a scheduled event for cancellation.  Default-constructed ids
  // are invalid.
  struct EventId {
    std::uint64_t seq = 0;
    bool valid() const { return seq != 0; }
  };

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  EventId ScheduleAt(Tick when, Callback callback);
  EventId ScheduleAfter(Tick delay, Callback callback) {
    return ScheduleAt(now_ + delay, std::move(callback));
  }

  // Returns true if the event existed and had not yet fired.
  bool Cancel(EventId id);

  // Runs the earliest pending event.  Returns false if the queue is empty.
  bool Step();

  // Runs all events with time <= t, then advances the clock to t.
  // Returns the number of events processed.
  std::uint64_t RunUntil(Tick t);

  // Runs until the queue is empty or max_events have been processed.
  std::uint64_t Run(std::uint64_t max_events = UINT64_MAX);

  Tick now() const { return now_; }
  bool empty() const { return live_.empty(); }
  std::size_t pending() const { return live_.size(); }
  std::uint64_t events_processed() const { return events_processed_; }

  // Telemetry shared by every component in this simulation: a network-wide
  // metric registry and a sim-time trace span recorder.  Hung off the
  // simulator because every component already holds a Simulator*, including
  // standalone single-switch test rigs that have no Network.
  obs::MetricRegistry& metrics() { return metrics_; }
  const obs::MetricRegistry& metrics() const { return metrics_; }
  obs::TraceRecorder& trace() { return trace_; }
  const obs::TraceRecorder& trace() const { return trace_; }

 private:
  struct Event {
    Tick when;
    std::uint64_t seq;
    Callback callback;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  // Pops the next non-cancelled event, or returns false.
  bool PopNext(Event* out);
  void Dispatch(Event&& event);

  Tick now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<std::uint64_t> live_;  // seqs scheduled and not fired
  obs::MetricRegistry metrics_;
  obs::TraceRecorder trace_;
};

}  // namespace autonet

#endif  // SRC_SIM_SIMULATOR_H_
