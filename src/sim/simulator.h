// Deterministic discrete-event simulation engine.  All network components —
// link symbol pumps, switch scheduling engines, Autopilot timer tasks — run
// as events on one simulator instance, so the data plane and the control
// plane share a single clock, as they do in the real Autonet.
//
// Determinism: events fire in (time, insertion sequence) order, and all
// randomness flows through seeded Rng instances, so every run is exactly
// reproducible.
//
// Hot-path layout: the event queue holds 16-byte POD entries — a timing
// wheel for the near-future slot grid over a 4-ary overflow heap for far
// timers; callbacks and train state live in slab pools indexed by those
// entries, so queue moves never touch a std::function and the
// never-cancelled event touches no hash table.  Cancellation is inverted —
// `Cancel` invalidates the pool slot (a generation check), and the stale
// queue entry is discarded when it surfaces; events that are never
// cancelled pay nothing.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <array>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/common/time.h"
#include "src/obs/flight.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace autonet {

class Simulator {
 public:
  using Callback = std::function<void()>;

  // Identifies a scheduled event or train for cancellation.  `seq` is the
  // creation sequence number (a generation tag: pool slots are recycled,
  // sequence numbers never are), `slot` locates the pool slot.  Default-
  // constructed ids are invalid.
  struct EventId {
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
    bool train = false;
    bool valid() const { return seq != 0; }
  };

  // What a train handler wants to happen after the firing it just served:
  // advance arithmetically, end the train, re-anchor to an explicit time
  // (optionally with a tie-break sequence reserved earlier, see
  // ReserveSeq()), or park — leave the queue but keep the slot so the owner
  // can ResumeTrain() it later without paying slot churn.
  // 16 bytes (kind shares a word with the 39-bit seq) so handlers return it
  // in a register pair instead of through a hidden sret pointer — the return
  // crosses an indirect-call boundary once per train firing.
  struct TrainStep {
    enum class Kind : std::uint8_t { kAuto, kDone, kAt, kPark };
    Tick when = 0;
    std::uint64_t seq_kind = 0;  // seq << 2 | kind

    Kind kind() const { return static_cast<Kind>(seq_kind & 3); }
    std::uint64_t seq() const { return seq_kind >> 2; }

    static TrainStep Auto() { return TrainStep{}; }
    static TrainStep Done() {
      return TrainStep{0, std::uint64_t{static_cast<std::uint8_t>(Kind::kDone)}};
    }
    static TrainStep At(Tick when, std::uint64_t seq = 0) {
      return TrainStep{when,
                       seq << 2 | static_cast<std::uint8_t>(Kind::kAt)};
    }
    static TrainStep Park() {
      return TrainStep{0, std::uint64_t{static_cast<std::uint8_t>(Kind::kPark)}};
    }
  };
  // Called with the 0-based firing index k.
  using TrainHandler = std::function<TrainStep(std::uint32_t k)>;
  // Raw-handler variant: a free function plus two context words.  Trains on
  // the per-byte hot path (link delivery on short links starts one train
  // per symbol) use this to skip std::function construction, indirection,
  // and teardown entirely.
  using TrainFn = TrainStep (*)(void* ctx, std::uint64_t arg, std::uint32_t k);

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Schedules `callback` at `when`.  A `when` in the past is clamped to now
  // and counted in the `sim.schedule_past_clamped` metric — debug and
  // release builds deliberately behave identically here.
  EventId ScheduleAt(Tick when, Callback callback);
  EventId ScheduleAfter(Tick delay, Callback callback) {
    return ScheduleAt(now_ + delay, std::move(callback));
  }

  // --- train events -----------------------------------------------------
  //
  // A train is an arithmetic (or handler-steered) sequence of firings that
  // keeps exactly ONE queue entry alive: after each firing the entry
  // re-sifts itself to the next firing time instead of being freed.  A
  // packet's worth of byte deliveries costs one pool slot, one handler
  // allocation, and one live queue entry — versus one of each per byte with
  // plain events.
  //
  // Determinism contract: simultaneous events fire in sequence order, and a
  // re-sift takes a fresh sequence number exactly where a plain event would
  // have been scheduled (right after the handler returns), so converting an
  // event-per-firing chain to a train is timing-invisible.  When the
  // tie-break position must be claimed *earlier* than the re-sift (the link
  // reserves a byte's delivery order at transmit time), reserve a sequence
  // with ReserveSeq() and pass it via TrainStep::At / ScheduleTrainAt.

  // Fires handler(0..count-1) at start, start+stride, ...; `count` 0 means
  // unbounded (the handler ends the train with TrainStep::Done()).  The
  // handler's TrainStep can override the arithmetic advance per firing.
  EventId ScheduleTrain(Tick start, Tick stride, std::uint32_t count,
                        TrainHandler handler);
  // Train with an explicit first firing time and (optionally) a reserved
  // sequence for it; stride defaults to 0 so the handler steers every step.
  EventId ScheduleTrainAt(Tick start, std::uint64_t seq, TrainHandler handler,
                          Tick stride = 0, std::uint32_t count = 0);
  // Raw-handler equivalent of ScheduleTrainAt (see TrainFn).
  EventId ScheduleTrainRawAt(Tick start, std::uint64_t seq, TrainFn fn,
                             void* ctx, std::uint64_t arg, Tick stride = 0,
                             std::uint32_t count = 0);

  // Re-queues a train that parked itself (TrainStep::Park).  Heap-identical
  // to ending the train and scheduling a fresh one at (when, seq) — only the
  // slot alloc/init/free churn is skipped — so the link's start-a-train-per-
  // symbol pattern on short links costs one heap push per symbol instead.
  // A parked train is not pending (it holds no queue entry); Cancel frees
  // it immediately.  Returns false if `id` does not name a parked train.
  // Inline: short links park and resume once per delivered symbol.
  bool ResumeTrain(EventId id, Tick when, std::uint64_t seq = 0) {
    if (!id.valid() || !id.train || id.slot >= trains_.size()) {
      return false;
    }
    TrainSlot& t = trains_[id.slot];
    if (t.id_seq != id.seq || !t.parked || t.cancelled) {
      return false;
    }
    if (when < now_) {
      when = now_;
      NotePastClamp();
    }
    if (seq == 0) {
      seq = NextSeq();
    }
    t.parked = false;
    queue_.push(QEntry::Make(when, seq, id.slot, true), now_);
    ++live_count_;
    return true;
  }

  // Claims the next insertion sequence number without scheduling anything.
  // Two events at the same tick fire in sequence order, so a component that
  // knows *now* that a firing will be needed later can fix its tie-break
  // position now (used by Link to keep byte-train delivery order-identical
  // to the per-byte-event engine it replaced).
  std::uint64_t ReserveSeq() { return NextSeq(); }
  // Schedules a plain event whose tie-break sequence was reserved earlier.
  EventId ScheduleAtReserved(Tick when, std::uint64_t seq, Callback callback);

  // Returns true if the event (or train) existed and had not yet fired (for
  // trains: not yet ended).  O(1), touches only the named pool slot.
  bool Cancel(EventId id);

  // --- interleaving exploration hook ------------------------------------
  //
  // The (when, seq) total order makes every run reproducible, but it also
  // means only ONE of the n! orderings of n same-tick events is ever
  // observed.  A tie-break chooser turns the dispatch loop into a guided
  // scheduler for exploring the others: before each dispatch, every live
  // entry at the earliest pending tick is collected into a ready batch (in
  // seq order) and chooser(now, n) picks which of the n fires next.  Events
  // a dispatch schedules at the same tick join the batch before the next
  // choice, and a choice of 0 every time reproduces the default (when, seq)
  // order exactly — so a schedule is replayed by replaying the choice
  // sequence.  The chooser is only consulted when n >= 2; out-of-range
  // picks clamp to 0.  Passing nullptr restores default order (any batched
  // entries return to the queue unharmed).  May be installed or removed
  // from inside a callback.  Purely an exploration instrument: off, it
  // costs one predicted branch per dispatch.
  using TieChooser = std::function<std::uint32_t(Tick now, std::uint32_t n)>;
  void SetTieChooser(TieChooser chooser);

  // Runs the earliest pending event.  Returns false if the queue is empty.
  bool Step();

  // Runs all events with time <= t, then advances the clock to t.
  // Returns the number of events processed.
  std::uint64_t RunUntil(Tick t);

  // Runs until the queue is empty or max_events have been processed.
  std::uint64_t Run(std::uint64_t max_events = UINT64_MAX);

  Tick now() const { return now_; }
  bool empty() const { return live_count_ == 0; }
  // Live schedulables: pending plain events plus active trains (a train
  // counts once, however many firings it has left).
  std::size_t pending() const { return live_count_; }
  std::uint64_t events_processed() const { return events_processed_; }

  // Telemetry shared by every component in this simulation: a network-wide
  // metric registry and a sim-time trace span recorder.  Hung off the
  // simulator because every component already holds a Simulator*, including
  // standalone single-switch test rigs that have no Network.
  obs::MetricRegistry& metrics() { return metrics_; }
  const obs::MetricRegistry& metrics() const { return metrics_; }
  obs::TraceRecorder& trace() { return trace_; }
  const obs::TraceRecorder& trace() const { return trace_; }
  // The reconfiguration flight recorder (disarmed by default; see
  // src/obs/flight.h).
  obs::FlightRecorder& flight() { return flight_; }
  const obs::FlightRecorder& flight() const { return flight_; }

 private:
  // Sequence numbers and pool-slot indices share one word in the heap entry
  // (seq in the high bits so key order == seq order among equal times).
  // 39 bits of sequence bounds a run at ~5.5e11 schedules and 24 bits of
  // slot bound the pools at ~16.7M concurrently-live events — both checked
  // where they could first overflow.
  static constexpr int kSlotBits = 24;
  static constexpr int kTrainBits = 1;
  static constexpr std::uint64_t kMaxSeq =
      (std::uint64_t{1} << (64 - kSlotBits - kTrainBits)) - 1;
  static constexpr std::uint32_t kMaxSlot =
      (std::uint32_t{1} << kSlotBits) - 1;

  // One heap entry, 16 bytes so a 4-ary level's children share one cache
  // line.  Trivially copyable: sifts move plain words, never a
  // std::function, and top() is read without const_cast tricks.
  struct QEntry {
    Tick when;
    std::uint64_t key;  // seq << 25 | slot << 1 | train

    static QEntry Make(Tick when, std::uint64_t seq, std::uint32_t slot,
                       bool train) {
      return QEntry{when, seq << (kSlotBits + kTrainBits) |
                              std::uint64_t{slot} << kTrainBits |
                              std::uint64_t{train}};
    }
    std::uint64_t seq() const { return key >> (kSlotBits + kTrainBits); }
    std::uint32_t slot() const {
      return static_cast<std::uint32_t>(key >> kTrainBits) & kMaxSlot;
    }
    bool train() const { return (key & 1) != 0; }
  };
  // 4-ary min-heap over QEntry.  Used as the *overflow* tier of the
  // two-tier EventQueue below: only events beyond the timing wheel's window
  // (millisecond-scale timers) live here, so its operations are off the
  // per-byte hot path.  Arity 4 halves the depth versus a binary heap and
  // keeps each level's four children inside 1.5 cache lines; dispatch order
  // is arity-independent because (when, seq) is a total order.
  class EventHeap {
   public:
    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }
    const QEntry& top() const { return heap_[0]; }

    void push(QEntry e) {
      std::size_t i = heap_.size();
      heap_.push_back(e);  // placeholder; hole-percolate e into position
      while (i > 0) {
        std::size_t parent = (i - 1) / kArity;
        if (!Before(e, heap_[parent])) {
          break;
        }
        heap_[i] = heap_[parent];
        i = parent;
      }
      heap_[i] = e;
    }

    // Bottom-up pop: percolate the root hole down the min-child path to a
    // leaf, then sift the detached last element up from there.  The last
    // element is almost always a recent far-future push, so the sift-up
    // terminates immediately — this trades the per-level "compare against
    // the sifted element" of the classic pop for one compare total.
    void pop() {
      QEntry last = heap_.back();
      heap_.pop_back();
      std::size_t n = heap_.size();
      if (n == 0) {
        return;
      }
      std::size_t i = 0;
      for (;;) {
        std::size_t first = kArity * i + 1;
        if (first >= n) {
          break;
        }
        std::size_t end = first + kArity < n ? first + kArity : n;
        std::size_t best = first;
        for (std::size_t c = first + 1; c < end; ++c) {
          if (Before(heap_[c], heap_[best])) {
            best = c;
          }
        }
        heap_[i] = heap_[best];
        i = best;
      }
      while (i > 0) {
        std::size_t parent = (i - 1) / kArity;
        if (!Before(last, heap_[parent])) {
          break;
        }
        heap_[i] = heap_[parent];
        i = parent;
      }
      heap_[i] = last;
    }

    // (when, key) lexicographic order as ONE branchless 128-bit compare —
    // the sift loops scan 4 children per level, and data-dependent branches
    // there are unpredictable.  `when` is never negative (schedules are
    // clamped to now), so unsigned order equals signed order; seq occupies
    // the key's high bits and is unique among live entries, so key order is
    // seq order.
    static bool Before(const QEntry& a, const QEntry& b) {
      using U128 = unsigned __int128;
      U128 ka = (U128{static_cast<std::uint64_t>(a.when)} << 64) | a.key;
      U128 kb = (U128{static_cast<std::uint64_t>(b.when)} << 64) | b.key;
      return ka < kb;
    }

   private:
    static constexpr std::size_t kArity = 4;

    std::vector<QEntry> heap_;
  };

  // Two-tier event queue: a 256-bucket timing wheel over 128 ns quanta
  // (a 32.8 µs window) in front of the 4-ary overflow heap.  The traffic
  // hot path lives entirely on the 80 ns slot grid within one propagation
  // delay of now, so its pushes and pops are O(1) appends/advances on
  // small per-bucket vectors; only far-future work (millisecond-scale
  // Autopilot timers) takes the heap path, and it migrates into the wheel
  // as the clock approaches.
  //
  // Exactness: dispatch order is the same total (when, seq) order the heap
  // alone gave.  Buckets are visited in time order; within a bucket the
  // vector is kept sorted on insert.  The tail append is already in order
  // for all but two rare cases — a reserved sequence (claimed at transmit
  // time) entering after a later-reserved same-when entry, and a heap
  // migration landing behind fresh pushes — which pay a bounded backward
  // insertion.  The scan can start at now's quantum because every queue
  // entry, live or stale, satisfies when >= now: the dispatch loop never
  // advances the clock past an undrained entry (stale heads are popped as
  // they surface, even past a RunUntil horizon).  That same invariant
  // bounds all wheel entries to [quantum(now), quantum(now) + 256), so the
  // ring indexing never aliases two quanta.
  class EventQueue {
   public:
    bool empty() const { return wheel_size_ == 0 && far_.empty(); }
    std::size_t size() const { return wheel_size_ + far_.size(); }

    // Returns the (when, seq)-minimal entry.  Far-heap entries migrate into
    // the wheel only once their quantum enters the scan window — never
    // beyond it, which is what keeps every wheel entry inside
    // [quantum(now), quantum(now) + 256) and the ring indexing alias-free.
    // With the wheel empty the heap top is returned in place (the clock may
    // stop short of it, and parking it in a bucket outside the window would
    // let a later scan surface it at an aliased position, ahead of nearer
    // entries still in the heap).  Precondition: queue not empty; `now` is
    // the caller's clock (every entry's when is >= now).
    const QEntry& top(Tick now) {
      if (wheel_size_ == 0) {
        top_in_far_ = true;
        return far_.top();
      }
      top_in_far_ = false;
      std::uint64_t q = Quantum(now);
      for (;;) {
        while (!far_.empty() && Quantum(far_.top().when) <= q) {
          PlaceInBucket(far_.top());
          ++wheel_size_;
          far_.pop();
        }
        Bucket& b = ring_[q & kMask];
        if (b.head < b.v.size()) {
          last_q_ = q;
          return b.v[b.head];
        }
        ++q;
      }
    }

    // Pops the entry the immediately preceding top() returned.
    void pop() {
      if (top_in_far_) {
        far_.pop();
        return;
      }
      Bucket& b = ring_[last_q_ & kMask];
      if (++b.head == b.v.size()) {
        b.v.clear();  // keeps capacity; ring buckets recycle their storage
        b.head = 0;
      }
      --wheel_size_;
    }

    void push(const QEntry& e, Tick now) {
      if (Quantum(e.when) - Quantum(now) >= kBuckets) {
        far_.push(e);
      } else {
        PlaceInBucket(e);
        ++wheel_size_;
      }
    }

   private:
    static constexpr int kQuantumBits = 7;        // 128 ns buckets
    static constexpr std::uint64_t kBuckets = 256;  // 32.8 µs window
    static constexpr std::uint64_t kMask = kBuckets - 1;

    struct Bucket {
      std::uint32_t head = 0;  // entries before head are already popped
      std::vector<QEntry> v;
    };

    static std::uint64_t Quantum(Tick when) {
      return static_cast<std::uint64_t>(when) >> kQuantumBits;
    }

    // Append keeping the bucket sorted by (when, key); see the class
    // comment for why the tail check nearly always passes.  A backward
    // insertion never moves below `head`: entries there already fired, and
    // an entry sorting before them would also have fired had it been
    // present, so the head position is exactly where the heap would have
    // surfaced it next.
    void PlaceInBucket(const QEntry& e) {
      Bucket& b = ring_[Quantum(e.when) & kMask];
      if (b.v.size() == b.head || !EventHeap::Before(e, b.v.back())) {
        b.v.push_back(e);
        return;
      }
      std::size_t i = b.v.size();
      while (i > b.head && EventHeap::Before(e, b.v[i - 1])) {
        --i;
      }
      b.v.insert(b.v.begin() + i, e);
    }

    std::uint64_t last_q_ = 0;   // quantum of the last top()'s bucket
    bool top_in_far_ = false;    // last top() came from the overflow heap
    std::size_t wheel_size_ = 0;
    std::array<Bucket, kBuckets> ring_;
    EventHeap far_;
  };

  struct EventSlot {
    Callback callback;
    std::uint64_t seq = 0;  // 0 = free; else generation tag of the entry
  };
  // Field order: the raw-dispatch fields a firing touches come first so
  // they share a cache line; the 32-byte std::function (cold for raw
  // trains) sits last.
  struct TrainSlot {
    TrainFn fn = nullptr;      // raw fast path; ctx/arg are its context
    void* ctx = nullptr;
    std::uint64_t arg = 0;
    std::uint32_t next_k = 0;
    std::uint32_t count = 0;  // 0 = unbounded
    bool cancelled = false;
    bool parked = false;  // no queue entry; waiting for ResumeTrain
    std::uint64_t id_seq = 0;  // creation seq (EventId tag); 0 = free
    Tick stride = 0;
    TrainHandler handler;      // used when fn == nullptr
  };

  // Allocates the next sequence number, halting (deterministically, with a
  // diagnostic) if the 39-bit heap-key field would overflow.
  std::uint64_t NextSeq() {
    if (next_seq_ > kMaxSeq) {
      SeqOverflow();
    }
    return next_seq_++;
  }
  [[noreturn]] static void SeqOverflow();
  [[noreturn]] static void SlotOverflow();

  std::uint32_t AllocEventSlot();
  std::uint32_t AllocTrainSlot();
  void FreeEventSlot(std::uint32_t slot);
  void FreeTrainSlot(std::uint32_t slot);
  // Is this queue entry still current?  Frees the slot of a drained
  // cancelled train as a side effect.
  bool EntryLive(const QEntry& entry);
  // `entry` is the caller's copy of queue_.top() — passed in (two registers)
  // so the dispatch loop reads the heap root exactly once per event.
  void DispatchTop(QEntry entry);
  // Runs an entry the caller already popped (the chooser path pulls entries
  // into ready_batch_ before dispatching them).
  void DispatchEntry(QEntry entry);
  // One dispatch under the tie chooser: fills/merges the ready batch at the
  // earliest pending tick <= horizon, lets the chooser pick, dispatches.
  // Returns false when nothing within the horizon remains.
  bool StepChosen(Tick horizon);
  // Default-order equivalent used by Step/RunUntil (the pre-chooser loop
  // body): peels stale heads, dispatches the earliest live entry.
  bool StepDefault(Tick horizon);
  void NotePastClamp();

  Tick now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t events_processed_ = 0;
  std::size_t live_count_ = 0;
  EventQueue queue_;
  TieChooser chooser_;
  // Live same-tick entries pulled out of the queue for the chooser,
  // seq-sorted; empty whenever chooser_ is unset.
  std::vector<QEntry> ready_batch_;
  std::vector<EventSlot> events_;
  std::vector<std::uint32_t> free_events_;
  std::vector<TrainSlot> trains_;
  std::vector<std::uint32_t> free_trains_;
#ifdef AUTONET_QUEUE_ORDER_CHECK
  Tick check_last_when_ = 0;          // dispatch-order audit (debug builds)
  std::uint64_t check_last_seq_ = 0;
#endif
  obs::Counter* past_clamped_ = nullptr;  // created on first clamp
  obs::MetricRegistry metrics_;
  obs::TraceRecorder trace_;
  obs::FlightRecorder flight_;
};

}  // namespace autonet

#endif  // SRC_SIM_SIMULATOR_H_
