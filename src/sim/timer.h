// Timer utilities layered on the simulator: a restartable one-shot timer and
// a periodic task, the building blocks of Autopilot's non-preemptive task
// scheduler (section 5.4).
#ifndef SRC_SIM_TIMER_H_
#define SRC_SIM_TIMER_H_

#include <functional>
#include <utility>

#include "src/sim/simulator.h"

namespace autonet {

// One-shot timer.  Start() cancels any pending expiry and re-arms.  Safe to
// Start()/Stop() from inside its own callback.
class Timer {
 public:
  Timer(Simulator* sim, std::function<void()> callback)
      : sim_(sim), callback_(std::move(callback)) {}
  ~Timer() { Stop(); }

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  void Start(Tick delay) {
    Stop();
    pending_ = sim_->ScheduleAfter(delay, [this] {
      pending_ = {};
      callback_();
    });
  }

  void Stop() {
    if (pending_.valid()) {
      sim_->Cancel(pending_);
      pending_ = {};
    }
  }

  bool running() const { return pending_.valid(); }

 private:
  Simulator* sim_;
  std::function<void()> callback_;
  Simulator::EventId pending_;
};

// Fires its callback every `period` once started.  The callback runs before
// the next firing is scheduled, so a callback may Stop() the task.
class PeriodicTask {
 public:
  PeriodicTask(Simulator* sim, std::function<void()> callback)
      : sim_(sim), callback_(std::move(callback)) {}
  ~PeriodicTask() { Stop(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void Start(Tick period, Tick initial_delay = -1) {
    period_ = period;
    Stop();
    stopped_ = false;
    pending_ = sim_->ScheduleAfter(initial_delay >= 0 ? initial_delay : period,
                                   [this] { Fire(); });
  }

  void Stop() {
    stopped_ = true;
    if (pending_.valid()) {
      sim_->Cancel(pending_);
      pending_ = {};
    }
  }

  bool running() const { return !stopped_; }
  Tick period() const { return period_; }

 private:
  void Fire() {
    pending_ = {};
    callback_();
    // The callback may have called Stop() or re-Start()ed us.
    if (!stopped_ && !pending_.valid()) {
      pending_ = sim_->ScheduleAfter(period_, [this] { Fire(); });
    }
  }

  Simulator* sim_;
  std::function<void()> callback_;
  Tick period_ = 0;
  bool stopped_ = true;
  Simulator::EventId pending_;
};

}  // namespace autonet

#endif  // SRC_SIM_TIMER_H_
