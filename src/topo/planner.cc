#include "src/topo/planner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <vector>

namespace autonet {

int TopologyDiameter(const NetTopology& topo) {
  if (topo.size() == 0) {
    return -1;
  }
  int diameter = 0;
  for (int s = 0; s < topo.size(); ++s) {
    std::vector<int> dist(topo.size(), -1);
    std::vector<int> queue{s};
    dist[s] = 0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      int u = queue[head];
      for (const TopoLink& link : topo.switches[u].links) {
        if (dist[link.remote_switch] < 0) {
          dist[link.remote_switch] = dist[u] + 1;
          queue.push_back(link.remote_switch);
        }
      }
    }
    for (int d : dist) {
      if (d < 0) {
        return -1;  // disconnected
      }
      diameter = std::max(diameter, d);
    }
  }
  return diameter;
}

namespace {

// Connectivity after deleting an optional switch and/or one undirected link
// (identified by its two (switch, port) ends).
bool ConnectedWithout(const NetTopology& topo, int skip_switch,
                      int cut_switch, PortNum cut_port) {
  int start = -1;
  int expected = 0;
  for (int i = 0; i < topo.size(); ++i) {
    if (i != skip_switch) {
      ++expected;
      if (start < 0) {
        start = i;
      }
    }
  }
  if (start < 0) {
    return true;
  }
  std::vector<bool> seen(topo.switches.size(), false);
  std::vector<int> queue{start};
  seen[start] = true;
  int reached = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    int u = queue[head];
    for (const TopoLink& link : topo.switches[u].links) {
      int v = link.remote_switch;
      if (v == skip_switch || seen[v]) {
        continue;
      }
      bool is_cut = (u == cut_switch && link.local_port == cut_port) ||
                    (v == cut_switch && link.remote_port == cut_port);
      if (is_cut) {
        continue;
      }
      seen[v] = true;
      ++reached;
      queue.push_back(v);
    }
  }
  return reached == expected;
}

}  // namespace

bool IsTwoEdgeConnected(const NetTopology& topo) {
  if (TopologyDiameter(topo) < 0) {
    return false;
  }
  for (int s = 0; s < topo.size(); ++s) {
    for (const TopoLink& link : topo.switches[s].links) {
      if (!ConnectedWithout(topo, /*skip_switch=*/-1, s, link.local_port)) {
        return false;
      }
    }
  }
  return true;
}

bool IsTwoVertexConnected(const NetTopology& topo) {
  if (topo.size() < 3 || TopologyDiameter(topo) < 0) {
    return topo.size() == 2 && TopologyDiameter(topo) == 1;
  }
  for (int s = 0; s < topo.size(); ++s) {
    if (!ConnectedWithout(topo, s, /*cut_switch=*/-1, /*cut_port=*/-1)) {
      return false;
    }
  }
  return true;
}

InstallationPlan PlanInstallation(const InstallationRequirements& req) {
  InstallationPlan plan;
  if (req.hosts <= 0) {
    plan.error = "no hosts to attach";
    return plan;
  }

  // Port budget per switch, following the SRC pattern: 4 trunk ports and
  // 8 host ports of the 12 (section 5.5).
  constexpr int kHostPortsPerSwitch = 8;
  int links_per_host = req.dual_homed ? 2 : 1;
  int attachments = static_cast<int>(
      std::ceil(static_cast<double>(req.hosts) * links_per_host *
                (1.0 + req.growth_headroom)));
  int switches = std::max(
      req.dual_homed ? 2 : 1,
      (attachments + kHostPortsPerSwitch - 1) / kHostPortsPerSwitch);

  // Torus dimensions: the most square factorization minimizes diameter.
  // Round the switch count up until it factors acceptably (never by more
  // than a few): rows >= 2 keeps every switch at trunk degree <= 4.
  int rows = 1;
  int cols = switches;
  for (int n = switches; n <= switches + 4; ++n) {
    int best_r = 1;
    for (int r = 2; r * r <= n; ++r) {
      if (n % r == 0) {
        best_r = std::max(best_r, r);
      }
    }
    if (best_r > 1 || n <= 3) {
      switches = n;
      rows = best_r;
      cols = n / best_r;
      break;
    }
  }
  if (rows == 1 && switches > 3) {
    rows = 1;  // degenerate: a ring
  }

  plan.rows = rows;
  plan.cols = cols;
  plan.switches = switches;
  plan.spec = rows >= 2 ? MakeTorus(rows, cols, 0) : MakeRing(switches, 0);
  if (switches == 2) {
    // A two-switch fabric needs a parallel trunk pair (a trunk group,
    // section 6.3) so no single cable failure can partition it.
    plan.spec.Cable(0, 1, req.cable_km);
  }

  // Dual-homed hosts attach to horizontally adjacent switches, spreading
  // the load round-robin as the SRC installation did.
  for (int h = 0; h < req.hosts; ++h) {
    int primary = h % switches;
    int alt = req.dual_homed ? (primary + 1) % switches : -1;
    if (switches == 1) {
      alt = -1;
    }
    plan.spec.AddHost(primary, alt, req.cable_km);
  }
  std::string valid = plan.spec.Validate();
  if (!valid.empty()) {
    plan.error = "planned spec invalid: " + valid;
    return plan;
  }

  // Verify the plan.
  NetTopology topo = plan.spec.ExpectedTopology();
  plan.trunk_cables = static_cast<int>(plan.spec.cables.size());
  plan.host_cables = req.hosts * links_per_host;
  plan.diameter = TopologyDiameter(topo);
  plan.host_capacity = switches * kHostPortsPerSwitch / links_per_host;
  plan.single_fault_tolerant = req.dual_homed && switches >= 2 &&
                               IsTwoEdgeConnected(topo) &&
                               IsTwoVertexConnected(topo);
  // Torus bisection: cutting the longer dimension severs 2*min(rows,cols)
  // links (wrap-around), each 100 Mbit/s.
  int cut_links = rows >= 2 ? 2 * std::min(rows, cols) : 2;
  plan.bisection_mbps = 100.0 * cut_links;
  plan.feasible = plan.diameter >= 0;
  return plan;
}

std::string InstallationPlan::Summary() const {
  if (!feasible) {
    return "infeasible: " + error;
  }
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "Autonet installation plan\n"
      "  fabric:        %d switches as a %dx%d %s, %d trunk cables\n"
      "  hosts:         %zu attached (%d cables), capacity %d\n"
      "  diameter:      %d switch-to-switch hops\n"
      "  availability:  %s\n"
      "  bisection:     %.0f Mbit/s\n",
      switches, rows, cols, rows >= 2 ? "torus" : "ring", trunk_cables,
      spec.hosts.size(), host_cables, host_capacity, diameter,
      single_fault_tolerant
          ? "no single link or switch failure disconnects any host"
          : "NOT single-fault tolerant",
      bisection_mbps);
  return buf;
}

}  // namespace autonet
