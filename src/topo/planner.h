// The installation guide the paper wished for (section 7): "For a network
// like Autonet to be widely employed, simple recipes must be developed for
// designing the topology of the physical configuration.  The number of
// switches and the pattern of the switch-to-switch and host-to-switch links
// determine network capacity, reliability, and cost.  Site personnel will
// need detailed guidance..."
//
// PlanInstallation implements that recipe: given the host population and
// availability requirements, it sizes a torus fabric following the SRC
// installation's pattern (four trunk ports, eight host ports per switch),
// spreads dual-homed hosts across adjacent switches, and *verifies* the
// result — single-fault tolerance (2-connectivity of the fabric plus
// dual-homing), diameter, port budget, and a bisection-bandwidth estimate —
// before emitting a human-readable installation summary.
#ifndef SRC_TOPO_PLANNER_H_
#define SRC_TOPO_PLANNER_H_

#include <string>

#include "src/topo/spec.h"

namespace autonet {

struct InstallationRequirements {
  int hosts = 0;             // hosts to attach now
  bool dual_homed = true;    // two links per host (section 3.9)
  double growth_headroom = 0.25;  // spare host-attachment capacity
  double cable_km = 0.05;    // in-building coax runs
};

struct InstallationPlan {
  bool feasible = false;
  std::string error;

  TopoSpec spec;
  int rows = 0;
  int cols = 0;
  int switches = 0;
  int trunk_cables = 0;
  int host_cables = 0;
  int host_capacity = 0;  // attachable hosts at this size
  int diameter = 0;
  // No single link or switch failure disconnects the fabric, and no single
  // failure disconnects any host (requires dual homing).
  bool single_fault_tolerant = false;
  // Worst-case cut bandwidth across the fabric's bisection, in Mbit/s.
  double bisection_mbps = 0;

  std::string Summary() const;
};

InstallationPlan PlanInstallation(const InstallationRequirements& req);

// --- analysis helpers (exposed for tests and tools) ---

// Longest shortest-path between switches; -1 if disconnected or empty.
int TopologyDiameter(const NetTopology& topo);
// The fabric stays connected after removing any single link.
bool IsTwoEdgeConnected(const NetTopology& topo);
// The fabric stays connected after removing any single switch.
bool IsTwoVertexConnected(const NetTopology& topo);

}  // namespace autonet

#endif  // SRC_TOPO_PLANNER_H_
