// Physical network blueprints: which switches exist, how they are cabled,
// and where hosts (dual-homed, section 3.9) attach.  A TopoSpec is the
// input to core::Network, which instantiates real switches, links, hosts,
// and Autopilot instances from it.
#ifndef SRC_TOPO_SPEC_H_
#define SRC_TOPO_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/routing/topology.h"

namespace autonet {

struct TopoSpec {
  struct SwitchSpec {
    Uid uid;
    std::string name;
  };
  struct CableSpec {
    int sw_a = -1;
    PortNum port_a = -1;
    int sw_b = -1;
    PortNum port_b = -1;
    double length_km = 0.01;  // 10 m machine-room coax by default
  };
  struct HostSpec {
    Uid uid;
    std::string name;
    // Primary and alternate attachments; alt_switch == -1 means single-homed.
    int primary_switch = -1;
    PortNum primary_port = -1;
    int alt_switch = -1;
    PortNum alt_port = -1;
    double length_km = 0.01;
  };

  std::vector<SwitchSpec> switches;
  std::vector<CableSpec> cables;
  std::vector<HostSpec> hosts;

  // --- construction helpers ---
  int AddSwitch(const std::string& name = "");
  // Cables the two switches together using automatically chosen free ports
  // (lowest free port on each side).  Returns the cable index.
  int Cable(int sw_a, int sw_b, double length_km = 0.01);
  // Attaches a host: primary on `primary_sw`, alternate on `alt_sw` (pass
  // -1 for single-homed).  Ports are chosen from the top down, keeping low
  // ports free for switch-to-switch cables as in the SRC installation.
  int AddHost(int primary_sw, int alt_sw = -1, double length_km = 0.01,
              const std::string& name = "");

  // Lowest free external port on a switch (-1 if full).
  PortNum LowestFreePort(int sw) const;
  // Highest free external port on a switch (-1 if full).
  PortNum HighestFreePort(int sw) const;

  // Empty string when well-formed (ports in range, no double-cabling).
  std::string Validate() const;

  // The NetTopology the reconfiguration should converge to, assuming every
  // link and switch is healthy.  Used by tests to check convergence.
  NetTopology ExpectedTopology() const;

  std::string ToText() const;
  static TopoSpec FromText(const std::string& text, std::string* error);
};

// --- generators ---

// N switches in a line; hosts_per_switch hosts on each (single-homed).
TopoSpec MakeLine(int n, int hosts_per_switch = 1);
TopoSpec MakeRing(int n, int hosts_per_switch = 1);
// Complete arity-ary tree of the given depth.
TopoSpec MakeTree(int arity, int depth, int hosts_per_switch = 1);
// rows x cols torus (wrap-around grid), 4 switch-to-switch links each.
TopoSpec MakeTorus(int rows, int cols, int hosts_per_switch = 1);
// Random connected topology: spanning tree + extra chords.
TopoSpec MakeRandom(int n, int extra_links, std::uint64_t seed,
                    int hosts_per_switch = 1);
// The SRC service network (section 5.5): 30 switches in an approximate
// 4 x 8 torus (maximum switch-to-switch distance 6), four inter-switch
// ports per switch in use, and `hosts` dual-connected hosts spread over
// the remaining ports (capacity 120).
TopoSpec MakeSrcLan(int hosts = 60);

}  // namespace autonet

#endif  // SRC_TOPO_SPEC_H_
