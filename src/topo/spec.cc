#include "src/topo/spec.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>

#include "src/sim/random.h"

namespace autonet {

namespace {
// Deterministic, human-readable UIDs: switches at 0x5000_0000 + i, hosts at
// 0xA000_0000 + i.
Uid SwitchUid(int i) { return Uid(0x50000000ull + static_cast<std::uint64_t>(i)); }
Uid HostUid(int i) { return Uid(0xA0000000ull + static_cast<std::uint64_t>(i)); }
}  // namespace

int TopoSpec::AddSwitch(const std::string& name) {
  int index = static_cast<int>(switches.size());
  SwitchSpec sw;
  sw.uid = SwitchUid(index);
  sw.name = name.empty() ? "sw" + std::to_string(index) : name;
  switches.push_back(std::move(sw));
  return index;
}

namespace {
void CollectUsedPorts(const TopoSpec& spec, int sw, std::set<PortNum>* used) {
  for (const TopoSpec::CableSpec& c : spec.cables) {
    if (c.sw_a == sw) {
      used->insert(c.port_a);
    }
    if (c.sw_b == sw) {
      used->insert(c.port_b);
    }
  }
  for (const TopoSpec::HostSpec& h : spec.hosts) {
    if (h.primary_switch == sw) {
      used->insert(h.primary_port);
    }
    if (h.alt_switch == sw) {
      used->insert(h.alt_port);
    }
  }
}
}  // namespace

PortNum TopoSpec::LowestFreePort(int sw) const {
  std::set<PortNum> used;
  CollectUsedPorts(*this, sw, &used);
  for (PortNum p = kFirstExternalPort; p < kPortsPerSwitch; ++p) {
    if (used.count(p) == 0) {
      return p;
    }
  }
  return -1;
}

PortNum TopoSpec::HighestFreePort(int sw) const {
  std::set<PortNum> used;
  CollectUsedPorts(*this, sw, &used);
  for (PortNum p = kPortsPerSwitch - 1; p >= kFirstExternalPort; --p) {
    if (used.count(p) == 0) {
      return p;
    }
  }
  return -1;
}

int TopoSpec::Cable(int sw_a, int sw_b, double length_km) {
  CableSpec c;
  c.sw_a = sw_a;
  c.port_a = LowestFreePort(sw_a);
  c.sw_b = sw_b;
  c.port_b = sw_a == sw_b ? -1 : LowestFreePort(sw_b);
  c.length_km = length_km;
  cables.push_back(c);
  return static_cast<int>(cables.size()) - 1;
}

int TopoSpec::AddHost(int primary_sw, int alt_sw, double length_km,
                      const std::string& name) {
  int index = static_cast<int>(hosts.size());
  HostSpec h;
  h.uid = HostUid(index);
  h.name = name.empty() ? "host" + std::to_string(index) : name;
  h.primary_switch = primary_sw;
  h.primary_port = HighestFreePort(primary_sw);
  if (alt_sw >= 0) {
    h.alt_switch = alt_sw;
    hosts.push_back(h);  // reserve the primary port before picking the alt
    hosts.back().alt_port = HighestFreePort(alt_sw);
    hosts.back().length_km = length_km;
    return index;
  }
  h.length_km = length_km;
  hosts.push_back(h);
  return index;
}

std::string TopoSpec::Validate() const {
  char buf[128];
  for (std::size_t i = 0; i < switches.size(); ++i) {
    std::set<PortNum> seen;
    std::set<PortNum> used;
    CollectUsedPorts(*this, static_cast<int>(i), &used);
    for (PortNum p : used) {
      if (p < kFirstExternalPort || p >= kPortsPerSwitch) {
        std::snprintf(buf, sizeof(buf), "switch %zu: port %d out of range", i,
                      p);
        return buf;
      }
    }
    (void)seen;
  }
  // Detect double-cabling of a port.
  std::set<std::pair<int, PortNum>> taken;
  auto claim = [&](int sw, PortNum port) {
    return taken.insert({sw, port}).second;
  };
  for (const CableSpec& c : cables) {
    if (!claim(c.sw_a, c.port_a) || !claim(c.sw_b, c.port_b)) {
      return "a switch port is cabled twice";
    }
  }
  for (const HostSpec& h : hosts) {
    if (!claim(h.primary_switch, h.primary_port)) {
      return "host primary port collides";
    }
    if (h.alt_switch >= 0 && !claim(h.alt_switch, h.alt_port)) {
      return "host alternate port collides";
    }
  }
  return "";
}

NetTopology TopoSpec::ExpectedTopology() const {
  NetTopology topo;
  topo.switches.resize(switches.size());
  for (std::size_t i = 0; i < switches.size(); ++i) {
    topo.switches[i].uid = switches[i].uid;
    topo.switches[i].proposed_num = static_cast<SwitchNum>(i + 1);
  }
  for (const CableSpec& c : cables) {
    if (c.sw_a == c.sw_b) {
      continue;  // looped cables are excluded from configurations
    }
    topo.switches[c.sw_a].links.push_back({c.port_a, c.sw_b, c.port_b});
    topo.switches[c.sw_b].links.push_back({c.port_b, c.sw_a, c.port_a});
  }
  for (const HostSpec& h : hosts) {
    topo.switches[h.primary_switch].host_ports.Set(h.primary_port);
    if (h.alt_switch >= 0) {
      topo.switches[h.alt_switch].host_ports.Set(h.alt_port);
    }
  }
  return topo;
}

std::string TopoSpec::ToText() const {
  std::ostringstream out;
  out << "switches " << switches.size() << "\n";
  for (const CableSpec& c : cables) {
    out << "cable " << c.sw_a << " " << c.port_a << " " << c.sw_b << " "
        << c.port_b << " " << c.length_km << "\n";
  }
  for (const HostSpec& h : hosts) {
    out << "host " << h.primary_switch << " " << h.primary_port << " "
        << h.alt_switch << " " << h.alt_port << " " << h.length_km << "\n";
  }
  return out.str();
}

TopoSpec TopoSpec::FromText(const std::string& text, std::string* error) {
  TopoSpec spec;
  std::istringstream in(text);
  std::string word;
  error->clear();
  while (in >> word) {
    if (word == "switches") {
      int n = 0;
      in >> n;
      for (int i = 0; i < n; ++i) {
        spec.AddSwitch();
      }
    } else if (word == "cable") {
      CableSpec c;
      in >> c.sw_a >> c.port_a >> c.sw_b >> c.port_b >> c.length_km;
      spec.cables.push_back(c);
    } else if (word == "host") {
      HostSpec h;
      in >> h.primary_switch >> h.primary_port >> h.alt_switch >> h.alt_port >>
          h.length_km;
      h.uid = HostUid(static_cast<int>(spec.hosts.size()));
      h.name = "host" + std::to_string(spec.hosts.size());
      spec.hosts.push_back(h);
    } else if (word[0] == '#') {
      std::string rest;
      std::getline(in, rest);
    } else {
      *error = "unknown directive: " + word;
      return spec;
    }
    if (in.fail()) {
      *error = "malformed directive: " + word;
      return spec;
    }
  }
  std::string v = spec.Validate();
  if (!v.empty()) {
    *error = v;
  }
  return spec;
}

// --- generators ---

namespace {
void SprinkleHosts(TopoSpec* spec, int hosts_per_switch) {
  for (int i = 0; i < static_cast<int>(spec->switches.size()); ++i) {
    for (int h = 0; h < hosts_per_switch; ++h) {
      spec->AddHost(i);
    }
  }
}
}  // namespace

TopoSpec MakeLine(int n, int hosts_per_switch) {
  TopoSpec spec;
  for (int i = 0; i < n; ++i) {
    spec.AddSwitch();
  }
  for (int i = 0; i + 1 < n; ++i) {
    spec.Cable(i, i + 1);
  }
  SprinkleHosts(&spec, hosts_per_switch);
  return spec;
}

TopoSpec MakeRing(int n, int hosts_per_switch) {
  TopoSpec spec;
  for (int i = 0; i < n; ++i) {
    spec.AddSwitch();
  }
  for (int i = 0; i < n; ++i) {
    if (n == 2 && i == 1) {
      break;  // avoid a double cable on a 2-ring
    }
    spec.Cable(i, (i + 1) % n);
  }
  SprinkleHosts(&spec, hosts_per_switch);
  return spec;
}

TopoSpec MakeTree(int arity, int depth, int hosts_per_switch) {
  TopoSpec spec;
  spec.AddSwitch();
  std::vector<int> frontier{0};
  for (int level = 1; level <= depth; ++level) {
    std::vector<int> next;
    for (int parent : frontier) {
      for (int c = 0; c < arity; ++c) {
        int child = spec.AddSwitch();
        spec.Cable(parent, child);
        next.push_back(child);
      }
    }
    frontier = std::move(next);
  }
  SprinkleHosts(&spec, hosts_per_switch);
  return spec;
}

TopoSpec MakeTorus(int rows, int cols, int hosts_per_switch) {
  TopoSpec spec;
  for (int i = 0; i < rows * cols; ++i) {
    spec.AddSwitch();
  }
  auto at = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (cols > 2 || c + 1 < cols) {
        spec.Cable(at(r, c), at(r, (c + 1) % cols));
      }
      if (rows > 2 || r + 1 < rows) {
        spec.Cable(at(r, c), at((r + 1) % rows, c));
      }
    }
  }
  SprinkleHosts(&spec, hosts_per_switch);
  return spec;
}

TopoSpec MakeRandom(int n, int extra_links, std::uint64_t seed,
                    int hosts_per_switch) {
  TopoSpec spec;
  for (int i = 0; i < n; ++i) {
    spec.AddSwitch();
  }
  Rng rng(seed);
  for (int i = 1; i < n; ++i) {
    spec.Cable(static_cast<int>(rng.UniformInt(0, i - 1)), i);
  }
  int added = 0;
  int attempts = 0;
  while (added < extra_links && attempts < 50 * (extra_links + 1)) {
    ++attempts;
    int a = static_cast<int>(rng.UniformInt(0, n - 1));
    int b = static_cast<int>(rng.UniformInt(0, n - 1));
    if (a == b || spec.LowestFreePort(a) < 0 || spec.LowestFreePort(b) < 0) {
      continue;
    }
    // Leave room for at least one host per switch.
    if (spec.HighestFreePort(a) <= spec.LowestFreePort(a) ||
        spec.HighestFreePort(b) <= spec.LowestFreePort(b)) {
      continue;
    }
    spec.Cable(a, b);
    ++added;
  }
  SprinkleHosts(&spec, hosts_per_switch);
  return spec;
}

TopoSpec MakeSrcLan(int hosts) {
  // An approximate 4x8 torus: the full torus with two switches removed and
  // their through-paths patched, giving 30 switches with four inter-switch
  // links each and a maximum switch-to-switch distance of 6 (section 6.6.5).
  constexpr int kRows = 4;
  constexpr int kCols = 8;
  const std::set<int> removed = {0 * kCols + 0, 2 * kCols + 4};

  TopoSpec spec;
  std::vector<int> index(kRows * kCols, -1);
  for (int pos = 0; pos < kRows * kCols; ++pos) {
    if (removed.count(pos) == 0) {
      index[pos] = spec.AddSwitch();
    }
  }
  auto pos_of = [&](int r, int c) {
    return ((r + kRows) % kRows) * kCols + ((c + kCols) % kCols);
  };
  // Horizontal and vertical rings, skipping over removed positions.
  auto next_present = [&](int r, int c, int dr, int dc) {
    do {
      r = (r + dr + kRows) % kRows;
      c = (c + dc + kCols) % kCols;
    } while (removed.count(pos_of(r, c)) > 0);
    return pos_of(r, c);
  };
  std::set<std::pair<int, int>> cabled;
  for (int r = 0; r < kRows; ++r) {
    for (int c = 0; c < kCols; ++c) {
      int here = pos_of(r, c);
      if (removed.count(here) > 0) {
        continue;
      }
      for (auto [dr, dc] : {std::pair<int, int>{0, 1}, {1, 0}}) {
        int there = next_present(r, c, dr, dc);
        int a = index[here];
        int b = index[there];
        if (a == b) {
          continue;
        }
        auto key = std::minmax(a, b);
        if (cabled.insert({key.first, key.second}).second) {
          spec.Cable(a, b, /*length_km=*/0.05);  // in-building coax runs
        }
      }
    }
  }
  // Dual-connected hosts spread around the machine room.
  int n = static_cast<int>(spec.switches.size());
  for (int h = 0; h < hosts; ++h) {
    int primary = h % n;
    int alt = (primary + 1) % n;
    spec.AddHost(primary, alt, /*length_km=*/0.05);
  }
  return spec;
}

}  // namespace autonet
