# Empty dependencies file for test_autopilot.
# This may be replaced when dependencies are built.
