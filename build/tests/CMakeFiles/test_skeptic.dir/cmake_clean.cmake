file(REMOVE_RECURSE
  "CMakeFiles/test_skeptic.dir/test_skeptic.cc.o"
  "CMakeFiles/test_skeptic.dir/test_skeptic.cc.o.d"
  "test_skeptic"
  "test_skeptic.pdb"
  "test_skeptic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skeptic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
