# Empty dependencies file for test_skeptic.
# This may be replaced when dependencies are built.
