file(REMOVE_RECURSE
  "CMakeFiles/test_localnet.dir/test_localnet.cc.o"
  "CMakeFiles/test_localnet.dir/test_localnet.cc.o.d"
  "test_localnet"
  "test_localnet.pdb"
  "test_localnet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_localnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
