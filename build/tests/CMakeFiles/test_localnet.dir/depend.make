# Empty dependencies file for test_localnet.
# This may be replaced when dependencies are built.
