# Empty compiler generated dependencies file for test_local_reconfig.
# This may be replaced when dependencies are built.
