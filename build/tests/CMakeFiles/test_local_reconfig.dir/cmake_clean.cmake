file(REMOVE_RECURSE
  "CMakeFiles/test_local_reconfig.dir/test_local_reconfig.cc.o"
  "CMakeFiles/test_local_reconfig.dir/test_local_reconfig.cc.o.d"
  "test_local_reconfig"
  "test_local_reconfig.pdb"
  "test_local_reconfig[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_local_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
