# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_link[1]_include.cmake")
include("/root/repo/build/tests/test_fabric[1]_include.cmake")
include("/root/repo/build/tests/test_routing[1]_include.cmake")
include("/root/repo/build/tests/test_host[1]_include.cmake")
include("/root/repo/build/tests/test_autopilot[1]_include.cmake")
include("/root/repo/build/tests/test_localnet[1]_include.cmake")
include("/root/repo/build/tests/test_topo[1]_include.cmake")
include("/root/repo/build/tests/test_skeptic[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_planner[1]_include.cmake")
include("/root/repo/build/tests/test_traffic[1]_include.cmake")
include("/root/repo/build/tests/test_local_reconfig[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
