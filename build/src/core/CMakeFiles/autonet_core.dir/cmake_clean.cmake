file(REMOVE_RECURSE
  "CMakeFiles/autonet_core.dir/network.cc.o"
  "CMakeFiles/autonet_core.dir/network.cc.o.d"
  "CMakeFiles/autonet_core.dir/traffic.cc.o"
  "CMakeFiles/autonet_core.dir/traffic.cc.o.d"
  "libautonet_core.a"
  "libautonet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autonet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
