# Empty compiler generated dependencies file for autonet_core.
# This may be replaced when dependencies are built.
