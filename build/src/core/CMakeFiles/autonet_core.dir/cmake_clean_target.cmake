file(REMOVE_RECURSE
  "libautonet_core.a"
)
