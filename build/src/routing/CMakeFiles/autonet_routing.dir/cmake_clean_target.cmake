file(REMOVE_RECURSE
  "libautonet_routing.a"
)
