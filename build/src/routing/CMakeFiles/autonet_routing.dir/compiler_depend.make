# Empty compiler generated dependencies file for autonet_routing.
# This may be replaced when dependencies are built.
