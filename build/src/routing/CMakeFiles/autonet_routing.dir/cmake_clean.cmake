file(REMOVE_RECURSE
  "CMakeFiles/autonet_routing.dir/spanning_tree.cc.o"
  "CMakeFiles/autonet_routing.dir/spanning_tree.cc.o.d"
  "CMakeFiles/autonet_routing.dir/topology.cc.o"
  "CMakeFiles/autonet_routing.dir/topology.cc.o.d"
  "CMakeFiles/autonet_routing.dir/updown.cc.o"
  "CMakeFiles/autonet_routing.dir/updown.cc.o.d"
  "CMakeFiles/autonet_routing.dir/verify.cc.o"
  "CMakeFiles/autonet_routing.dir/verify.cc.o.d"
  "libautonet_routing.a"
  "libautonet_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autonet_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
