
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/spanning_tree.cc" "src/routing/CMakeFiles/autonet_routing.dir/spanning_tree.cc.o" "gcc" "src/routing/CMakeFiles/autonet_routing.dir/spanning_tree.cc.o.d"
  "/root/repo/src/routing/topology.cc" "src/routing/CMakeFiles/autonet_routing.dir/topology.cc.o" "gcc" "src/routing/CMakeFiles/autonet_routing.dir/topology.cc.o.d"
  "/root/repo/src/routing/updown.cc" "src/routing/CMakeFiles/autonet_routing.dir/updown.cc.o" "gcc" "src/routing/CMakeFiles/autonet_routing.dir/updown.cc.o.d"
  "/root/repo/src/routing/verify.cc" "src/routing/CMakeFiles/autonet_routing.dir/verify.cc.o" "gcc" "src/routing/CMakeFiles/autonet_routing.dir/verify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/autonet_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/autonet_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/autonet_link.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/autonet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
