file(REMOVE_RECURSE
  "CMakeFiles/autonet_host.dir/controller.cc.o"
  "CMakeFiles/autonet_host.dir/controller.cc.o.d"
  "CMakeFiles/autonet_host.dir/crypto.cc.o"
  "CMakeFiles/autonet_host.dir/crypto.cc.o.d"
  "CMakeFiles/autonet_host.dir/driver.cc.o"
  "CMakeFiles/autonet_host.dir/driver.cc.o.d"
  "CMakeFiles/autonet_host.dir/ethernet.cc.o"
  "CMakeFiles/autonet_host.dir/ethernet.cc.o.d"
  "CMakeFiles/autonet_host.dir/localnet.cc.o"
  "CMakeFiles/autonet_host.dir/localnet.cc.o.d"
  "CMakeFiles/autonet_host.dir/srp_client.cc.o"
  "CMakeFiles/autonet_host.dir/srp_client.cc.o.d"
  "libautonet_host.a"
  "libautonet_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autonet_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
