file(REMOVE_RECURSE
  "libautonet_host.a"
)
