
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/controller.cc" "src/host/CMakeFiles/autonet_host.dir/controller.cc.o" "gcc" "src/host/CMakeFiles/autonet_host.dir/controller.cc.o.d"
  "/root/repo/src/host/crypto.cc" "src/host/CMakeFiles/autonet_host.dir/crypto.cc.o" "gcc" "src/host/CMakeFiles/autonet_host.dir/crypto.cc.o.d"
  "/root/repo/src/host/driver.cc" "src/host/CMakeFiles/autonet_host.dir/driver.cc.o" "gcc" "src/host/CMakeFiles/autonet_host.dir/driver.cc.o.d"
  "/root/repo/src/host/ethernet.cc" "src/host/CMakeFiles/autonet_host.dir/ethernet.cc.o" "gcc" "src/host/CMakeFiles/autonet_host.dir/ethernet.cc.o.d"
  "/root/repo/src/host/localnet.cc" "src/host/CMakeFiles/autonet_host.dir/localnet.cc.o" "gcc" "src/host/CMakeFiles/autonet_host.dir/localnet.cc.o.d"
  "/root/repo/src/host/srp_client.cc" "src/host/CMakeFiles/autonet_host.dir/srp_client.cc.o" "gcc" "src/host/CMakeFiles/autonet_host.dir/srp_client.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/autonet_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/autonet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/autonet_link.dir/DependInfo.cmake"
  "/root/repo/build/src/autopilot/CMakeFiles/autonet_autopilot.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/autonet_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/autonet_fabric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
