# Empty dependencies file for autonet_host.
# This may be replaced when dependencies are built.
