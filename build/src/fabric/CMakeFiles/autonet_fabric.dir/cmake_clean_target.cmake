file(REMOVE_RECURSE
  "libautonet_fabric.a"
)
