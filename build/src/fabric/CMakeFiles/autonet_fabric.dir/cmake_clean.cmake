file(REMOVE_RECURSE
  "CMakeFiles/autonet_fabric.dir/cp_port.cc.o"
  "CMakeFiles/autonet_fabric.dir/cp_port.cc.o.d"
  "CMakeFiles/autonet_fabric.dir/forwarder.cc.o"
  "CMakeFiles/autonet_fabric.dir/forwarder.cc.o.d"
  "CMakeFiles/autonet_fabric.dir/forwarding_table.cc.o"
  "CMakeFiles/autonet_fabric.dir/forwarding_table.cc.o.d"
  "CMakeFiles/autonet_fabric.dir/link_unit.cc.o"
  "CMakeFiles/autonet_fabric.dir/link_unit.cc.o.d"
  "CMakeFiles/autonet_fabric.dir/port_fifo.cc.o"
  "CMakeFiles/autonet_fabric.dir/port_fifo.cc.o.d"
  "CMakeFiles/autonet_fabric.dir/scheduler.cc.o"
  "CMakeFiles/autonet_fabric.dir/scheduler.cc.o.d"
  "CMakeFiles/autonet_fabric.dir/switch.cc.o"
  "CMakeFiles/autonet_fabric.dir/switch.cc.o.d"
  "libautonet_fabric.a"
  "libautonet_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autonet_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
