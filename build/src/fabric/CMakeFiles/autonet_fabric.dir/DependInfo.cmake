
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/cp_port.cc" "src/fabric/CMakeFiles/autonet_fabric.dir/cp_port.cc.o" "gcc" "src/fabric/CMakeFiles/autonet_fabric.dir/cp_port.cc.o.d"
  "/root/repo/src/fabric/forwarder.cc" "src/fabric/CMakeFiles/autonet_fabric.dir/forwarder.cc.o" "gcc" "src/fabric/CMakeFiles/autonet_fabric.dir/forwarder.cc.o.d"
  "/root/repo/src/fabric/forwarding_table.cc" "src/fabric/CMakeFiles/autonet_fabric.dir/forwarding_table.cc.o" "gcc" "src/fabric/CMakeFiles/autonet_fabric.dir/forwarding_table.cc.o.d"
  "/root/repo/src/fabric/link_unit.cc" "src/fabric/CMakeFiles/autonet_fabric.dir/link_unit.cc.o" "gcc" "src/fabric/CMakeFiles/autonet_fabric.dir/link_unit.cc.o.d"
  "/root/repo/src/fabric/port_fifo.cc" "src/fabric/CMakeFiles/autonet_fabric.dir/port_fifo.cc.o" "gcc" "src/fabric/CMakeFiles/autonet_fabric.dir/port_fifo.cc.o.d"
  "/root/repo/src/fabric/scheduler.cc" "src/fabric/CMakeFiles/autonet_fabric.dir/scheduler.cc.o" "gcc" "src/fabric/CMakeFiles/autonet_fabric.dir/scheduler.cc.o.d"
  "/root/repo/src/fabric/switch.cc" "src/fabric/CMakeFiles/autonet_fabric.dir/switch.cc.o" "gcc" "src/fabric/CMakeFiles/autonet_fabric.dir/switch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/autonet_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/autonet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/autonet_link.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
