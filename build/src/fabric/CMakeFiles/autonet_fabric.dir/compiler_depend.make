# Empty compiler generated dependencies file for autonet_fabric.
# This may be replaced when dependencies are built.
