file(REMOVE_RECURSE
  "CMakeFiles/autonet_autopilot.dir/autopilot.cc.o"
  "CMakeFiles/autonet_autopilot.dir/autopilot.cc.o.d"
  "CMakeFiles/autonet_autopilot.dir/config.cc.o"
  "CMakeFiles/autonet_autopilot.dir/config.cc.o.d"
  "CMakeFiles/autonet_autopilot.dir/messages.cc.o"
  "CMakeFiles/autonet_autopilot.dir/messages.cc.o.d"
  "CMakeFiles/autonet_autopilot.dir/reconfig.cc.o"
  "CMakeFiles/autonet_autopilot.dir/reconfig.cc.o.d"
  "libautonet_autopilot.a"
  "libautonet_autopilot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autonet_autopilot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
