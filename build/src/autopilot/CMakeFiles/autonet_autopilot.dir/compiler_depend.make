# Empty compiler generated dependencies file for autonet_autopilot.
# This may be replaced when dependencies are built.
