file(REMOVE_RECURSE
  "libautonet_autopilot.a"
)
