# Empty compiler generated dependencies file for autonet_topo.
# This may be replaced when dependencies are built.
