
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/planner.cc" "src/topo/CMakeFiles/autonet_topo.dir/planner.cc.o" "gcc" "src/topo/CMakeFiles/autonet_topo.dir/planner.cc.o.d"
  "/root/repo/src/topo/spec.cc" "src/topo/CMakeFiles/autonet_topo.dir/spec.cc.o" "gcc" "src/topo/CMakeFiles/autonet_topo.dir/spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/autonet_common.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/autonet_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/autonet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/autonet_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/autonet_link.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
