file(REMOVE_RECURSE
  "CMakeFiles/autonet_topo.dir/planner.cc.o"
  "CMakeFiles/autonet_topo.dir/planner.cc.o.d"
  "CMakeFiles/autonet_topo.dir/spec.cc.o"
  "CMakeFiles/autonet_topo.dir/spec.cc.o.d"
  "libautonet_topo.a"
  "libautonet_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autonet_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
