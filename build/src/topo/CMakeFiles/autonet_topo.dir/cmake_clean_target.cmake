file(REMOVE_RECURSE
  "libautonet_topo.a"
)
