
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/crc.cc" "src/common/CMakeFiles/autonet_common.dir/crc.cc.o" "gcc" "src/common/CMakeFiles/autonet_common.dir/crc.cc.o.d"
  "/root/repo/src/common/event_log.cc" "src/common/CMakeFiles/autonet_common.dir/event_log.cc.o" "gcc" "src/common/CMakeFiles/autonet_common.dir/event_log.cc.o.d"
  "/root/repo/src/common/ids.cc" "src/common/CMakeFiles/autonet_common.dir/ids.cc.o" "gcc" "src/common/CMakeFiles/autonet_common.dir/ids.cc.o.d"
  "/root/repo/src/common/packet.cc" "src/common/CMakeFiles/autonet_common.dir/packet.cc.o" "gcc" "src/common/CMakeFiles/autonet_common.dir/packet.cc.o.d"
  "/root/repo/src/common/port_vector.cc" "src/common/CMakeFiles/autonet_common.dir/port_vector.cc.o" "gcc" "src/common/CMakeFiles/autonet_common.dir/port_vector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
