file(REMOVE_RECURSE
  "libautonet_common.a"
)
