file(REMOVE_RECURSE
  "CMakeFiles/autonet_common.dir/crc.cc.o"
  "CMakeFiles/autonet_common.dir/crc.cc.o.d"
  "CMakeFiles/autonet_common.dir/event_log.cc.o"
  "CMakeFiles/autonet_common.dir/event_log.cc.o.d"
  "CMakeFiles/autonet_common.dir/ids.cc.o"
  "CMakeFiles/autonet_common.dir/ids.cc.o.d"
  "CMakeFiles/autonet_common.dir/packet.cc.o"
  "CMakeFiles/autonet_common.dir/packet.cc.o.d"
  "CMakeFiles/autonet_common.dir/port_vector.cc.o"
  "CMakeFiles/autonet_common.dir/port_vector.cc.o.d"
  "libautonet_common.a"
  "libautonet_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autonet_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
