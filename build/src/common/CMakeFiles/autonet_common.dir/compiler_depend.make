# Empty compiler generated dependencies file for autonet_common.
# This may be replaced when dependencies are built.
