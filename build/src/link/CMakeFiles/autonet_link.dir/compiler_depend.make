# Empty compiler generated dependencies file for autonet_link.
# This may be replaced when dependencies are built.
