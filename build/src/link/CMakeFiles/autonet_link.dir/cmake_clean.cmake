file(REMOVE_RECURSE
  "CMakeFiles/autonet_link.dir/link.cc.o"
  "CMakeFiles/autonet_link.dir/link.cc.o.d"
  "libautonet_link.a"
  "libautonet_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autonet_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
