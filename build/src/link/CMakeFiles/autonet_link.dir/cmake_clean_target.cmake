file(REMOVE_RECURSE
  "libautonet_link.a"
)
