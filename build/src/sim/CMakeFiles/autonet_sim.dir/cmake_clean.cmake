file(REMOVE_RECURSE
  "CMakeFiles/autonet_sim.dir/simulator.cc.o"
  "CMakeFiles/autonet_sim.dir/simulator.cc.o.d"
  "libautonet_sim.a"
  "libautonet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autonet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
