# Empty dependencies file for autonet_sim.
# This may be replaced when dependencies are built.
