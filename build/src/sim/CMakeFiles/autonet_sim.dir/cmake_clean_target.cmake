file(REMOVE_RECURSE
  "libautonet_sim.a"
)
