# Empty dependencies file for bench_aggregate_bw.
# This may be replaced when dependencies are built.
