file(REMOVE_RECURSE
  "../bench/bench_aggregate_bw"
  "../bench/bench_aggregate_bw.pdb"
  "CMakeFiles/bench_aggregate_bw.dir/bench_aggregate_bw.cc.o"
  "CMakeFiles/bench_aggregate_bw.dir/bench_aggregate_bw.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aggregate_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
