file(REMOVE_RECURSE
  "../bench/bench_switch_latency"
  "../bench/bench_switch_latency.pdb"
  "CMakeFiles/bench_switch_latency.dir/bench_switch_latency.cc.o"
  "CMakeFiles/bench_switch_latency.dir/bench_switch_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_switch_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
