# Empty dependencies file for bench_switch_latency.
# This may be replaced when dependencies are built.
