file(REMOVE_RECURSE
  "../bench/bench_fifo_sizing"
  "../bench/bench_fifo_sizing.pdb"
  "CMakeFiles/bench_fifo_sizing.dir/bench_fifo_sizing.cc.o"
  "CMakeFiles/bench_fifo_sizing.dir/bench_fifo_sizing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fifo_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
