# Empty dependencies file for bench_broadcast_deadlock.
# This may be replaced when dependencies are built.
