file(REMOVE_RECURSE
  "../bench/bench_broadcast_deadlock"
  "../bench/bench_broadcast_deadlock.pdb"
  "CMakeFiles/bench_broadcast_deadlock.dir/bench_broadcast_deadlock.cc.o"
  "CMakeFiles/bench_broadcast_deadlock.dir/bench_broadcast_deadlock.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_broadcast_deadlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
