# Empty dependencies file for bench_reconfig_scaling.
# This may be replaced when dependencies are built.
