file(REMOVE_RECURSE
  "../bench/bench_reconfig_scaling"
  "../bench/bench_reconfig_scaling.pdb"
  "CMakeFiles/bench_reconfig_scaling.dir/bench_reconfig_scaling.cc.o"
  "CMakeFiles/bench_reconfig_scaling.dir/bench_reconfig_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reconfig_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
