file(REMOVE_RECURSE
  "../bench/bench_arp_learning"
  "../bench/bench_arp_learning.pdb"
  "CMakeFiles/bench_arp_learning.dir/bench_arp_learning.cc.o"
  "CMakeFiles/bench_arp_learning.dir/bench_arp_learning.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_arp_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
