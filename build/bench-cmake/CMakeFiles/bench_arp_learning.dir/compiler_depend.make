# Empty compiler generated dependencies file for bench_arp_learning.
# This may be replaced when dependencies are built.
