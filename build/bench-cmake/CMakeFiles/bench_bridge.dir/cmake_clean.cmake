file(REMOVE_RECURSE
  "../bench/bench_bridge"
  "../bench/bench_bridge.pdb"
  "CMakeFiles/bench_bridge.dir/bench_bridge.cc.o"
  "CMakeFiles/bench_bridge.dir/bench_bridge.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
