# Empty dependencies file for bench_bridge.
# This may be replaced when dependencies are built.
