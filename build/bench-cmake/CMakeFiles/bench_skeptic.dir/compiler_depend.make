# Empty compiler generated dependencies file for bench_skeptic.
# This may be replaced when dependencies are built.
