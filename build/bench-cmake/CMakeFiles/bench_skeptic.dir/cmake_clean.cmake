file(REMOVE_RECURSE
  "../bench/bench_skeptic"
  "../bench/bench_skeptic.pdb"
  "CMakeFiles/bench_skeptic.dir/bench_skeptic.cc.o"
  "CMakeFiles/bench_skeptic.dir/bench_skeptic.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_skeptic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
