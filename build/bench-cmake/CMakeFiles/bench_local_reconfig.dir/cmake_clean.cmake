file(REMOVE_RECURSE
  "../bench/bench_local_reconfig"
  "../bench/bench_local_reconfig.pdb"
  "CMakeFiles/bench_local_reconfig.dir/bench_local_reconfig.cc.o"
  "CMakeFiles/bench_local_reconfig.dir/bench_local_reconfig.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_local_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
