file(REMOVE_RECURSE
  "../bench/bench_reconfig_time"
  "../bench/bench_reconfig_time.pdb"
  "CMakeFiles/bench_reconfig_time.dir/bench_reconfig_time.cc.o"
  "CMakeFiles/bench_reconfig_time.dir/bench_reconfig_time.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reconfig_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
