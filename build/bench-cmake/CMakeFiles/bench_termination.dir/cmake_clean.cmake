file(REMOVE_RECURSE
  "../bench/bench_termination"
  "../bench/bench_termination.pdb"
  "CMakeFiles/bench_termination.dir/bench_termination.cc.o"
  "CMakeFiles/bench_termination.dir/bench_termination.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_termination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
