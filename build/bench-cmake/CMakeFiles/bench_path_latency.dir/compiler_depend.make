# Empty compiler generated dependencies file for bench_path_latency.
# This may be replaced when dependencies are built.
