file(REMOVE_RECURSE
  "../bench/bench_path_latency"
  "../bench/bench_path_latency.pdb"
  "CMakeFiles/bench_path_latency.dir/bench_path_latency.cc.o"
  "CMakeFiles/bench_path_latency.dir/bench_path_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_path_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
