# Empty dependencies file for bench_updown_vs_shortest.
# This may be replaced when dependencies are built.
