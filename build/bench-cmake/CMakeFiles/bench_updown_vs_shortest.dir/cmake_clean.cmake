file(REMOVE_RECURSE
  "../bench/bench_updown_vs_shortest"
  "../bench/bench_updown_vs_shortest.pdb"
  "CMakeFiles/bench_updown_vs_shortest.dir/bench_updown_vs_shortest.cc.o"
  "CMakeFiles/bench_updown_vs_shortest.dir/bench_updown_vs_shortest.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_updown_vs_shortest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
