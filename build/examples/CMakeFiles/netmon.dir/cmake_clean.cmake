file(REMOVE_RECURSE
  "CMakeFiles/netmon.dir/netmon.cpp.o"
  "CMakeFiles/netmon.dir/netmon.cpp.o.d"
  "netmon"
  "netmon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netmon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
