# Empty compiler generated dependencies file for netmon.
# This may be replaced when dependencies are built.
