file(REMOVE_RECURSE
  "CMakeFiles/srclan.dir/srclan.cpp.o"
  "CMakeFiles/srclan.dir/srclan.cpp.o.d"
  "srclan"
  "srclan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srclan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
