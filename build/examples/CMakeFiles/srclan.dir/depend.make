# Empty dependencies file for srclan.
# This may be replaced when dependencies are built.
