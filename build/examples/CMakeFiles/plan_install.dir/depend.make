# Empty dependencies file for plan_install.
# This may be replaced when dependencies are built.
