file(REMOVE_RECURSE
  "CMakeFiles/plan_install.dir/plan_install.cpp.o"
  "CMakeFiles/plan_install.dir/plan_install.cpp.o.d"
  "plan_install"
  "plan_install.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_install.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
