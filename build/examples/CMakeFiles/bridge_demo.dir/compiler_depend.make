# Empty compiler generated dependencies file for bridge_demo.
# This may be replaced when dependencies are built.
