file(REMOVE_RECURSE
  "CMakeFiles/bridge_demo.dir/bridge_demo.cpp.o"
  "CMakeFiles/bridge_demo.dir/bridge_demo.cpp.o.d"
  "bridge_demo"
  "bridge_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bridge_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
